// Package optplace is an exact, exponential-time placer for small
// instances of the modified 2-D placement problem. It exists to
// validate the simulated-annealing heuristic: on instances it can
// solve, it returns the provably minimum array area, giving the test
// suite a ground truth and the experiment record an optimality gap.
//
// The search is branch-and-bound over module positions in decreasing
// footprint order: modules are placed one at a time at every feasible
// position and orientation inside a growing bounding box, pruning
// branches whose bounding box already reaches the incumbent area and
// exploiting two standard packing symmetry breaks (the first module is
// confined to the lower-left quadrant of the core, and square-footprint
// modules skip the redundant orientation).
package optplace

import (
	"fmt"
	"sort"

	"dmfb/internal/geom"
	"dmfb/internal/place"
)

// Limits bounds the search so tests cannot explode.
type Limits struct {
	// MaxModules caps the instance size (default 6).
	MaxModules int
	// MaxSide caps the core area side length (default 12).
	MaxSide int
	// MaxNodes caps search nodes expanded (default 5e6); exceeding it
	// returns an error rather than a silently suboptimal result.
	MaxNodes int
}

func (l Limits) withDefaults() Limits {
	if l.MaxModules == 0 {
		l.MaxModules = 6
	}
	if l.MaxSide == 0 {
		l.MaxSide = 12
	}
	if l.MaxNodes == 0 {
		l.MaxNodes = 5_000_000
	}
	return l
}

// Result is the outcome of an exact search.
type Result struct {
	Placement *place.Placement
	Cells     int // provably minimal bounding-array cells
	Nodes     int // search nodes expanded
}

type searcher struct {
	mods      []place.Module
	order     []int // placement order, decreasing footprint
	conflicts [][]bool
	side      int
	maxNodes  int

	cur       *place.Placement
	placed    []bool
	bestCells int
	best      *place.Placement
	nodes     int
}

// Minimize returns a minimum-area placement of the modules within a
// side×side core, or an error if the instance exceeds the limits or
// the node budget.
func Minimize(mods []place.Module, limits Limits) (Result, error) {
	l := limits.withDefaults()
	if len(mods) == 0 {
		return Result{}, fmt.Errorf("optplace: no modules")
	}
	if len(mods) > l.MaxModules {
		return Result{}, fmt.Errorf("optplace: %d modules exceeds limit %d", len(mods), l.MaxModules)
	}
	for _, m := range mods {
		if !m.Size.Valid() {
			return Result{}, fmt.Errorf("optplace: module %s has invalid size", m.Name)
		}
		if m.Size.W > l.MaxSide || m.Size.H > l.MaxSide {
			return Result{}, fmt.Errorf("optplace: module %s exceeds core side %d", m.Name, l.MaxSide)
		}
	}

	s := &searcher{
		mods:     mods,
		side:     l.MaxSide,
		maxNodes: l.MaxNodes,
		cur:      place.New(mods),
		placed:   make([]bool, len(mods)),
	}
	s.conflicts = make([][]bool, len(mods))
	for i := range mods {
		s.conflicts[i] = make([]bool, len(mods))
		for j := range mods {
			s.conflicts[i][j] = i != j && mods[i].Span.Overlaps(mods[j].Span)
		}
	}
	s.order = make([]int, len(mods))
	for i := range s.order {
		s.order[i] = i
	}
	sort.Slice(s.order, func(a, b int) bool {
		ca, cb := mods[s.order[a]].Size.Cells(), mods[s.order[b]].Size.Cells()
		if ca != cb {
			return ca > cb
		}
		return s.order[a] < s.order[b]
	})
	// Incumbent: the worst case is the full core.
	s.bestCells = l.MaxSide*l.MaxSide + 1

	if err := s.search(0, geom.Rect{}); err != nil {
		return Result{}, err
	}
	if s.best == nil {
		return Result{}, fmt.Errorf("optplace: no feasible placement within a %d-cell core side", l.MaxSide)
	}
	s.best.Normalize()
	return Result{Placement: s.best, Cells: s.bestCells, Nodes: s.nodes}, nil
}

// search places order[k:] given the bounding box of order[:k].
func (s *searcher) search(k int, bb geom.Rect) error {
	s.nodes++
	if s.nodes > s.maxNodes {
		return fmt.Errorf("optplace: node budget %d exhausted", s.maxNodes)
	}
	if bb.Cells() >= s.bestCells {
		return nil // bound: cannot improve
	}
	if k == len(s.order) {
		s.bestCells = bb.Cells()
		s.best = s.cur.Clone()
		return nil
	}
	i := s.order[k]
	sizes := []geom.Size{s.mods[i].Size}
	if !s.mods[i].Size.IsSquare() {
		sizes = append(sizes, s.mods[i].Size.Transpose())
	}
	for oi, sz := range sizes {
		// Symmetry break: reflecting the whole placement across either
		// axis of the core preserves the bounding-box area, so the
		// first module's origin can be confined to the lower-left
		// quadrant of its position range without losing any optimum.
		maxX, maxY := s.side-sz.W, s.side-sz.H
		if k == 0 {
			maxX = (s.side - sz.W) / 2
			maxY = (s.side - sz.H) / 2
		}
		for y := 0; y <= maxY; y++ {
			for x := 0; x <= maxX; x++ {
				r := geom.Rect{X: x, Y: y, W: sz.W, H: sz.H}
				nb := bb.Union(r)
				if nb.Cells() >= s.bestCells {
					continue
				}
				if s.clashes(i, r) {
					continue
				}
				s.cur.Pos[i] = geom.Point{X: x, Y: y}
				s.cur.Rot[i] = oi == 1
				s.placed[i] = true
				if err := s.search(k+1, nb); err != nil {
					return err
				}
				s.placed[i] = false
			}
		}
	}
	return nil
}

func (s *searcher) clashes(i int, r geom.Rect) bool {
	for j := range s.mods {
		if s.placed[j] && s.conflicts[i][j] && r.Overlaps(s.cur.Rect(j)) {
			return true
		}
	}
	return false
}
