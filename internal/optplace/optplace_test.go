package optplace

import (
	"math/rand"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/place"
)

func mod(id, w, h, s, e int) place.Module {
	return place.Module{ID: id, Name: "M", Size: geom.Size{W: w, H: h},
		Span: geom.Interval{Start: s, End: e}}
}

func TestSingleModule(t *testing.T) {
	res, err := Minimize([]place.Module{mod(0, 3, 5, 0, 10)}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 15 {
		t.Errorf("Cells = %d, want 15", res.Cells)
	}
	if err := res.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeDisjointModulesStack(t *testing.T) {
	// Two 3x3 modules with disjoint spans share cells: optimum 9.
	res, err := Minimize([]place.Module{mod(0, 3, 3, 0, 5), mod(1, 3, 3, 5, 10)}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 9 {
		t.Errorf("Cells = %d, want 9", res.Cells)
	}
}

func TestConflictingModulesPack(t *testing.T) {
	// Two 2x3 modules overlapping in time: optimal packing 4x3 = 12.
	res, err := Minimize([]place.Module{mod(0, 2, 3, 0, 5), mod(1, 2, 3, 0, 5)}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 12 {
		t.Errorf("Cells = %d, want 12", res.Cells)
	}
	if err := res.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRotationFindsBetterPacking(t *testing.T) {
	// A 1x4 and a 4x1 module, concurrent: with rotation both can be
	// 4x1 stacked -> 4x2 = 8 cells.
	res, err := Minimize([]place.Module{mod(0, 1, 4, 0, 5), mod(1, 4, 1, 0, 5)}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 8 {
		t.Errorf("Cells = %d, want 8", res.Cells)
	}
}

func TestLimitsEnforced(t *testing.T) {
	mods := make([]place.Module, 8)
	for i := range mods {
		mods[i] = mod(i, 2, 2, 0, 5)
	}
	if _, err := Minimize(mods, Limits{MaxModules: 6}); err == nil {
		t.Error("module limit not enforced")
	}
	if _, err := Minimize(nil, Limits{}); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := Minimize([]place.Module{mod(0, 20, 2, 0, 5)}, Limits{}); err == nil {
		t.Error("oversized module accepted")
	}
	if _, err := Minimize([]place.Module{mod(0, 0, 2, 0, 5)}, Limits{}); err == nil {
		t.Error("invalid module accepted")
	}
	// Tiny node budget errs rather than returning a wrong answer.
	mods5 := []place.Module{mod(0, 2, 3, 0, 5), mod(1, 3, 2, 0, 5), mod(2, 2, 2, 0, 5),
		mod(3, 3, 3, 0, 5), mod(4, 2, 4, 0, 5)}
	if _, err := Minimize(mods5, Limits{MaxNodes: 10}); err == nil {
		t.Error("node budget not enforced")
	}
}

// TestSANeverBeatsOptimal: on random small instances, the annealing
// placer can match but never improve on the exact optimum — and at
// paper-grade effort it matches it most of the time.
func TestSANeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	matched := 0
	trials := 12
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(3)
		mods := make([]place.Module, n)
		for i := range mods {
			st := rng.Intn(6)
			mods[i] = mod(i, 1+rng.Intn(3), 1+rng.Intn(3), st, st+1+rng.Intn(8))
		}
		opt, err := Minimize(mods, Limits{MaxSide: 9})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prob := core.NewProblem(mods)
		sa, _, err := core.AnnealArea(prob, core.Options{
			Seed: int64(trial), ItersPerModule: 200, WindowPatience: 5})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sa.ArrayCells() < opt.Cells {
			t.Fatalf("trial %d: SA (%d cells) beat the proven optimum (%d)\nSA:\n%s\nOPT:\n%s",
				trial, sa.ArrayCells(), opt.Cells, sa, opt.Placement)
		}
		if sa.ArrayCells() == opt.Cells {
			matched++
		}
	}
	if matched < trials*2/3 {
		t.Errorf("SA matched the optimum on only %d/%d instances", matched, trials)
	}
}

// TestOptimalIsLowerBoundOnPeakClique: the optimum is at least the
// largest concurrent footprint.
func TestOptimalRespectsConcurrencyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		mods := make([]place.Module, n)
		for i := range mods {
			st := rng.Intn(4)
			mods[i] = mod(i, 1+rng.Intn(3), 1+rng.Intn(3), st, st+1+rng.Intn(6))
		}
		res, err := Minimize(mods, Limits{MaxSide: 9})
		if err != nil {
			t.Fatal(err)
		}
		peak := 0
		for tt := 0; tt < 12; tt++ {
			area := 0
			for _, m := range mods {
				if m.Span.Contains(tt) {
					area += m.Size.Cells()
				}
			}
			if area > peak {
				peak = area
			}
		}
		if res.Cells < peak {
			t.Fatalf("trial %d: optimum %d below concurrency bound %d", trial, res.Cells, peak)
		}
		if err := res.Placement.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
