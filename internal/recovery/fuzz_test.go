package recovery

import (
	"math/rand"
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/modlib"
)

// FuzzLadder drives the full ladder through arbitrary fault sequences
// on a mixed workload and asserts the safety contract: the ladder
// always returns a plan (L4 cannot fail), and every plan validates —
// no live-module overlap, no live unfinished module covering a fault,
// precedence intact after stretching, abandonment successor-closed,
// and any stretch within the configured limit.
func FuzzLadder(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(42), uint8(4))
	f.Add(int64(-7), uint8(1))
	f.Add(int64(123456789), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8) {
		k := int(kRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))

		mk := func(name string) modlib.Device { return dev(t, name) }
		st := mkState(t,
			[]modSpec{
				{"M1", mk(modlib.Mixer2x2), 0, 10},
				{"M2", mk(modlib.Mixer2x3), 2, 8},
				{"M3", mk(modlib.Mixer1x4), 10, 15},
				{"DET", mk(modlib.DetectorLED), 15, 45},
			},
			[]geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 0}, {X: 7, Y: 5}},
			geom.Rect{X: 0, Y: 0, W: 10, H: 8}, 0, geom.Point{})

		const stretchLimit = 30
		ladder := New(Options{StretchLimit: stretchLimit, Anneal: annealForTest()})

		seen := map[geom.Point]bool{}
		abandoned := map[int]bool{}
		var faults []geom.Point
		now := 0
		for j := 0; j < k; j++ {
			now += rng.Intn(5)
			cell := geom.Point{X: rng.Intn(st.Array.W), Y: rng.Intn(st.Array.H)}
			if seen[cell] {
				continue
			}
			seen[cell] = true
			faults = append(faults, cell)

			st.Now = now
			st.Fault = cell
			st.Faults = faults
			st.Abandoned = abandoned

			plan, rep := ladder.Recover(st)
			if plan == nil {
				t.Fatalf("fault %d at %v t=%d: full ladder returned no plan: %+v",
					j, cell, now, rep.Attempts)
			}
			if err := ValidatePlan(st, plan); err != nil {
				t.Fatalf("fault %d at %v t=%d: level %v plan invalid: %v",
					j, cell, now, plan.Level, err)
			}
			if plan.StretchSec > stretchLimit {
				t.Fatalf("fault %d: stretch %d exceeds limit %d", j, plan.StretchSec, stretchLimit)
			}
			if plan.Level == LevelNone || plan.Level > LevelDegrade {
				t.Fatalf("fault %d: nonsensical level %v", j, plan.Level)
			}
			// Adopt the plan, as a runtime controller would.
			st.Placement = plan.Placement
			st.Sched = plan.Sched
			for _, id := range plan.Abandon {
				abandoned[id] = true
			}
		}
	})
}
