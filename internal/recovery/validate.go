package recovery

import (
	"fmt"
)

// ValidatePlan proves a plan safe to adopt without executing it:
//
//   - every module lies inside the fabricated array;
//   - no two live (non-abandoned) modules with overlapping time spans
//     share cells;
//   - no live unfinished module covers any known fault;
//   - the schedule respects precedence among live operations;
//   - the abandoned set is successor-closed: nothing live depends on
//     an abandoned operation.
//
// The fuzz harness asserts this over arbitrary fault sequences, which
// is what backs the ladder's "degrade but never corrupt" contract.
func ValidatePlan(st State, p *Plan) error {
	if p == nil {
		return fmt.Errorf("recovery: nil plan")
	}
	pl := p.Placement
	sched := p.Sched
	if pl == nil || sched == nil {
		return fmt.Errorf("recovery: plan missing placement or schedule")
	}
	if len(pl.Modules) != len(st.Placement.Modules) {
		return fmt.Errorf("recovery: plan has %d modules, state has %d",
			len(pl.Modules), len(st.Placement.Modules))
	}
	ops := moduleOps(sched)
	if len(ops) != len(pl.Modules) {
		return fmt.Errorf("recovery: plan binds %d ops to %d modules", len(ops), len(pl.Modules))
	}

	abandoned := make(map[int]bool, len(st.Abandoned)+len(p.Abandon))
	for id, v := range st.Abandoned {
		if v {
			abandoned[id] = true
		}
	}
	for _, id := range p.Abandon {
		abandoned[id] = true
	}

	for i := range pl.Modules {
		if r := pl.Rect(i); !st.Array.ContainsRect(r) {
			return fmt.Errorf("recovery: module %s at %v outside array %v",
				pl.Modules[i].Name, r, st.Array)
		}
	}

	for i := 0; i < len(pl.Modules); i++ {
		if abandoned[ops[i]] {
			continue
		}
		for j := i + 1; j < len(pl.Modules); j++ {
			if abandoned[ops[j]] || !pl.Modules[i].Span.Overlaps(pl.Modules[j].Span) {
				continue
			}
			if ov := pl.Rect(i).Intersect(pl.Rect(j)); !ov.Empty() {
				return fmt.Errorf("recovery: live modules %s%v and %s%v overlap at %v",
					pl.Modules[i].Name, pl.Rect(i), pl.Modules[j].Name, pl.Rect(j), ov)
			}
		}
	}

	for i := range pl.Modules {
		if abandoned[ops[i]] || pl.Modules[i].Span.End <= st.Now {
			continue
		}
		r := pl.Rect(i)
		for _, f := range st.Faults {
			if r.Contains(f) {
				return fmt.Errorf("recovery: live module %s at %v covers fault %v",
					pl.Modules[i].Name, r, f)
			}
		}
	}

	g := sched.Graph
	for v := range sched.Items {
		if abandoned[v] {
			for _, s := range g.Succ(v) {
				if !abandoned[s] {
					return fmt.Errorf("recovery: abandoned op %s has live successor %s",
						g.Op(v).Name, g.Op(s).Name)
				}
			}
			continue
		}
		for _, pr := range g.Pred(v) {
			if sched.Items[pr].Span.End > sched.Items[v].Span.Start {
				return fmt.Errorf("recovery: op %s starts at %d before pred %s ends at %d",
					g.Op(v).Name, sched.Items[v].Span.Start, g.Op(pr).Name, sched.Items[pr].Span.End)
			}
		}
	}
	return nil
}
