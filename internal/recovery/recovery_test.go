package recovery

import (
	"strings"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
	"dmfb/internal/place"
	"dmfb/internal/schedule"
)

// annealForTest keeps the L3 defragmentation anneal short but long
// enough to solve the tiny fixtures deterministically.
func annealForTest() core.Options {
	return core.Options{Seed: 1, ItersPerModule: 300, WindowPatience: 4}
}

// mkState builds a recovery state from a hand-written schedule: each
// spec is one reconfigurable op with its device and span, fed by one
// dispense and draining into one output. Module i is placed at pos[i].
type modSpec struct {
	name  string
	dev   modlib.Device
	start int
	end   int
}

func mkState(t *testing.T, specs []modSpec, pos []geom.Point, array geom.Rect, now int, fault geom.Point) State {
	t.Helper()
	g := assay.New("recovery-test")
	var opIDs []int
	for _, sp := range specs {
		d := g.AddOp("D-"+sp.name, assay.Dispense, "x")
		m := g.AddOp(sp.name, sp.dev.Kind, "")
		o := g.AddOp("O-"+sp.name, assay.Output, "")
		g.MustEdge(d, m)
		g.MustEdge(m, o)
		opIDs = append(opIDs, m)
	}
	s := &schedule.Schedule{Graph: g, Items: make([]schedule.Item, g.NumOps())}
	for i := 0; i < g.NumOps(); i++ {
		s.Items[i] = schedule.Item{Op: g.Op(i)}
	}
	for i, sp := range specs {
		m := opIDs[i]
		s.Items[m].Device = sp.dev
		s.Items[m].Bound = true
		s.Items[m].Span = geom.Interval{Start: sp.start, End: sp.end}
		// Dispense completes instantly at the mix start; output starts
		// when the module ends.
		s.Items[m-1].Span = geom.Interval{Start: sp.start, End: sp.start}
		s.Items[m+1].Span = geom.Interval{Start: sp.end, End: sp.end}
		if sp.end > s.Makespan {
			s.Makespan = sp.end
		}
	}
	pl := place.New(place.FromSchedule(s))
	copy(pl.Pos, pos)
	if err := pl.Validate(); err != nil {
		t.Fatalf("test fixture placement invalid: %v", err)
	}
	return State{
		Sched:     s,
		Placement: pl,
		Array:     array,
		Now:       now,
		Fault:     fault,
		Faults:    []geom.Point{fault},
	}
}

func dev(t *testing.T, name string) modlib.Device {
	t.Helper()
	d, ok := modlib.Table1().Get(name)
	if !ok {
		t.Fatalf("device %s missing from Table 1", name)
	}
	return d
}

func TestLadderL1Relocates(t *testing.T) {
	// One 4x4 mixer on an 8x4 array: plenty of room to slide right.
	st := mkState(t,
		[]modSpec{{"M1", dev(t, modlib.Mixer2x2), 0, 10}},
		[]geom.Point{{X: 0, Y: 0}},
		geom.Rect{X: 0, Y: 0, W: 8, H: 4}, 2, geom.Point{X: 1, Y: 1})
	plan, rep := New(Options{}).Recover(st)
	if plan == nil {
		t.Fatalf("ladder failed: %+v", rep.Attempts)
	}
	if plan.Level != LevelRelocate {
		t.Fatalf("level = %v, want relocate", plan.Level)
	}
	if len(plan.Relocations) != 1 {
		t.Fatalf("relocations = %d, want 1", len(plan.Relocations))
	}
	if plan.Sched != st.Sched {
		t.Fatal("L1 must not touch the schedule")
	}
	if err := ValidatePlan(st, plan); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if rep.Final() != LevelRelocate {
		t.Fatalf("report final = %v", rep.Final())
	}
}

func TestLadderL2DowngradesAndStretches(t *testing.T) {
	// A 4x6 mixer fills a 5x6 array except one column; after the fault
	// at (1,1) no 4x6 site exists, but the 4x5 Mixer2x3 fits the 5x4
	// strip above the fault. The op restarts on the slower device and
	// the output is pushed from t=3 to t=7.
	st := mkState(t,
		[]modSpec{{"M1", dev(t, modlib.Mixer2x4), 0, 3}},
		[]geom.Point{{X: 0, Y: 0}},
		geom.Rect{X: 0, Y: 0, W: 5, H: 6}, 1, geom.Point{X: 1, Y: 1})
	plan, rep := New(Options{}).Recover(st)
	if plan == nil {
		t.Fatalf("ladder failed: %+v", rep.Attempts)
	}
	if plan.Level != LevelDowngrade {
		t.Fatalf("level = %v, want downgrade (attempts %+v)", plan.Level, rep.Attempts)
	}
	if len(plan.Downgrades) != 1 {
		t.Fatalf("downgrades = %d, want 1", len(plan.Downgrades))
	}
	d := plan.Downgrades[0]
	if d.To.Name != modlib.Mixer2x3 {
		t.Fatalf("downgraded to %s, want %s (largest smaller mixer)", d.To.Name, modlib.Mixer2x3)
	}
	// Restarted at the fault time on the 6 s device: span [0, 1+6).
	if got := plan.Sched.Items[d.OpID].Span; got != (geom.Interval{Start: 0, End: 7}) {
		t.Fatalf("downgraded span = %v, want [0,7)", got)
	}
	if plan.StretchSec != 4 {
		t.Fatalf("stretch = %d, want 4", plan.StretchSec)
	}
	// The output op rides the stretch.
	out := plan.Sched.Items[d.OpID+1]
	if out.Span.Start != 7 {
		t.Fatalf("output start = %d, want 7", out.Span.Start)
	}
	if err := ValidatePlan(st, plan); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	// The attempt trail shows L1 failing first.
	if len(rep.Attempts) != 2 || rep.Attempts[0].Err == "" {
		t.Fatalf("attempts = %+v, want failed L1 then successful L2", rep.Attempts)
	}
	if !strings.Contains(rep.Attempts[0].Err, "reconfiguration failed") {
		t.Fatalf("L1 error = %q", rep.Attempts[0].Err)
	}
}

func TestLadderL3Defragments(t *testing.T) {
	// Two concurrent 3x3 detectors on an 8x3 array. After the fault at
	// (1,1) the free strip is only 2 wide, so the affected detector
	// fits nowhere (L1) and has no smaller variant (L2) — but moving
	// BOTH detectors right of the fault works, which only the L3
	// re-anneal can discover.
	det := dev(t, modlib.DetectorLED)
	st := mkState(t,
		[]modSpec{{"DET1", det, 0, 30}, {"DET2", det, 0, 30}},
		[]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}},
		geom.Rect{X: 0, Y: 0, W: 8, H: 3}, 5, geom.Point{X: 1, Y: 1})
	plan, rep := New(Options{Anneal: annealForTest()}).Recover(st)
	if plan == nil {
		t.Fatalf("ladder failed: %+v", rep.Attempts)
	}
	if plan.Level != LevelDefragment {
		t.Fatalf("level = %v, want defragment (attempts %+v)", plan.Level, rep.Attempts)
	}
	if err := ValidatePlan(st, plan); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("attempts = %+v, want L1+L2 failures then L3", rep.Attempts)
	}
}

func TestLadderL4AbandonsDependencyCone(t *testing.T) {
	// As the L3 scenario but on a 6x3 array: two 3x3 detectors leave
	// zero spare cells, so nothing can absorb the fault. L4 abandons
	// the affected detector and its output; the other detector lives.
	det := dev(t, modlib.DetectorLED)
	st := mkState(t,
		[]modSpec{{"DET1", det, 0, 30}, {"DET2", det, 0, 30}},
		[]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}},
		geom.Rect{X: 0, Y: 0, W: 6, H: 3}, 5, geom.Point{X: 1, Y: 1})
	plan, rep := New(Options{Anneal: annealForTest()}).Recover(st)
	if plan == nil {
		t.Fatalf("ladder failed: %+v", rep.Attempts)
	}
	if plan.Level != LevelDegrade {
		t.Fatalf("level = %v, want degrade (attempts %+v)", plan.Level, rep.Attempts)
	}
	// Abandoned: DET1 (op 1) and its output (op 2); its dispense (op
	// 0) already ran and DET2's cone (ops 3-5) is untouched.
	if len(plan.Abandon) != 2 {
		t.Fatalf("abandon = %v, want the DET1 op and its output", plan.Abandon)
	}
	names := map[string]bool{}
	for _, id := range plan.Abandon {
		names[st.Sched.Graph.Op(id).Name] = true
	}
	if !names["DET1"] || !names["O-DET1"] {
		t.Fatalf("abandoned %v, want DET1 and O-DET1", names)
	}
	if len(plan.Relocations) != 0 {
		t.Fatalf("relocations = %v, want none", plan.Relocations)
	}
	if err := ValidatePlan(st, plan); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
}

func TestLadderHonorsMaxLevel(t *testing.T) {
	// The L4 scenario with the ladder capped at L1: every rung fails
	// and the plan is nil — the caller sees the abort, as in the
	// paper's plain partial-reconfiguration story.
	det := dev(t, modlib.DetectorLED)
	st := mkState(t,
		[]modSpec{{"DET1", det, 0, 30}, {"DET2", det, 0, 30}},
		[]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}},
		geom.Rect{X: 0, Y: 0, W: 6, H: 3}, 5, geom.Point{X: 1, Y: 1})
	plan, rep := New(Options{MaxLevel: LevelRelocate}).Recover(st)
	if plan != nil {
		t.Fatalf("capped ladder returned a plan at level %v", plan.Level)
	}
	if len(rep.Attempts) != 1 || rep.Attempts[0].Err == "" {
		t.Fatalf("attempts = %+v, want one L1 failure", rep.Attempts)
	}
	if rep.Final() != LevelNone {
		t.Fatalf("final = %v, want none", rep.Final())
	}
}

func TestLadderStretchLimitBlocksDowngrade(t *testing.T) {
	// The L2 scenario needs a 4-second stretch; capping it at 2 pushes
	// the ladder past L2. L3 then re-places the single module (the
	// anneal can use the full array at the original footprint... the
	// fault blocks every 4x6 site, so L3 fails too) and L4 abandons.
	st := mkState(t,
		[]modSpec{{"M1", dev(t, modlib.Mixer2x4), 0, 3}},
		[]geom.Point{{X: 0, Y: 0}},
		geom.Rect{X: 0, Y: 0, W: 5, H: 6}, 1, geom.Point{X: 1, Y: 1})
	plan, rep := New(Options{StretchLimit: 2, Anneal: annealForTest()}).Recover(st)
	if plan == nil {
		t.Fatalf("ladder failed: %+v", rep.Attempts)
	}
	if plan.Level != LevelDegrade {
		t.Fatalf("level = %v, want degrade (attempts %+v)", plan.Level, rep.Attempts)
	}
	if err := ValidatePlan(st, plan); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
}

func TestLadderIsDeterministic(t *testing.T) {
	det := dev(t, modlib.DetectorLED)
	run := func() *Plan {
		st := mkState(t,
			[]modSpec{{"DET1", det, 0, 30}, {"DET2", det, 0, 30}},
			[]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}},
			geom.Rect{X: 0, Y: 0, W: 8, H: 3}, 5, geom.Point{X: 1, Y: 1})
		plan, _ := New(Options{Anneal: annealForTest()}).Recover(st)
		return plan
	}
	a, b := run(), run()
	if a == nil || b == nil {
		t.Fatal("ladder failed")
	}
	if a.Level != b.Level {
		t.Fatalf("levels differ: %v vs %v", a.Level, b.Level)
	}
	for i := range a.Placement.Modules {
		if a.Placement.Rect(i) != b.Placement.Rect(i) {
			t.Fatalf("module %d placed at %v then %v", i, a.Placement.Rect(i), b.Placement.Rect(i))
		}
	}
}

func TestDowngradeCandidatesOrdering(t *testing.T) {
	lib := modlib.Table1()
	cur := dev(t, modlib.Mixer2x4) // 24 cells
	cands := downgradeCandidates(lib, cur)
	var names []string
	for _, d := range cands {
		names = append(names, d.Name)
	}
	// Largest smaller device first: 2x3 (20) > 1x4 (18) > 2x2 (16).
	want := []string{modlib.Mixer2x3, modlib.Mixer1x4, modlib.Mixer2x2}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("candidates = %v, want %v", names, want)
	}
	// The smallest mixer has no candidates at all.
	if got := downgradeCandidates(lib, dev(t, modlib.Mixer2x2)); len(got) != 0 {
		t.Fatalf("Mixer2x2 candidates = %v, want none", got)
	}
}
