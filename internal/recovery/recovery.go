// Package recovery implements a graceful-degradation recovery ladder
// for faults detected during field operation of a microfluidic
// biochip. It generalises the paper's two reconfiguration techniques —
// partial reconfiguration (Section 5.1) and full reconfiguration
// (Section 5.2) — into an escalation ladder that a simulator or a
// runtime controller invokes on every detected fault:
//
//	L1 relocate   — in-place relocation of every affected module to a
//	                maximal empty rectangle avoiding all known faults
//	                (partial reconfiguration, possibly rotated).
//	L2 downgrade  — as L1, but modules that do not fit anywhere at
//	                their catalogue footprint are re-hosted on a
//	                smaller library device of the same operation kind.
//	                The operation restarts on the smaller (typically
//	                slower) device and every transitively dependent
//	                operation is pushed later: a local schedule
//	                stretch.
//	L3 defragment — pause the assay and re-place the entire module
//	                set around the accumulated faults with a short
//	                seeded anneal (full reconfiguration). Spare cells
//	                scattered by earlier relocations are consolidated.
//	L4 degrade    — abandon exactly the operations whose dependency
//	                cone is unrecoverable, relocate the rest, and let
//	                the assay run to partial completion.
//
// Each level is attempted in order until one produces a valid Plan;
// L4 always succeeds (in the worst case by abandoning every
// unfinished operation), which is what makes the ladder graceful: a
// fault can degrade the assay but never crash it.
//
// The package deliberately knows nothing about droplets or the
// simulator: its inputs are the synthesis artefacts (schedule,
// placement, array, fault set) and its output is a Plan — new
// placement, possibly stretched schedule, abandoned operation set —
// that the caller applies. This keeps the dependency direction
// one-way (sim imports recovery, never the reverse) and makes plans
// independently checkable: ValidatePlan proves a plan safe without
// executing it.
package recovery

import (
	"fmt"
	"time"

	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
	"dmfb/internal/schedule"
	"dmfb/internal/telemetry"
)

// Level identifies a rung of the escalation ladder.
type Level int

const (
	// LevelNone means no recovery was attempted or needed.
	LevelNone Level = iota
	// LevelRelocate is L1: in-place partial reconfiguration.
	LevelRelocate
	// LevelDowngrade is L2: relocation with module downgrade and a
	// local schedule stretch.
	LevelDowngrade
	// LevelDefragment is L3: pause and re-place the full module set
	// with a short seeded anneal.
	LevelDefragment
	// LevelDegrade is L4: abandon unrecoverable dependency cones and
	// complete the rest of the assay.
	LevelDegrade
)

// String returns the ladder rung's mnemonic.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelRelocate:
		return "relocate"
	case LevelDowngrade:
		return "downgrade"
	case LevelDefragment:
		return "defragment"
	case LevelDegrade:
		return "degrade"
	}
	return fmt.Sprintf("level-%d", int(l))
}

// Options configures a Ladder.
type Options struct {
	// MaxLevel is the highest rung the ladder may climb. Zero means
	// LevelDegrade (the full ladder); LevelRelocate reproduces the
	// paper's plain partial reconfiguration.
	MaxLevel Level
	// Library is the device catalogue searched for L2 downgrades.
	// Nil means modlib.Table1.
	Library *modlib.Library
	// Anneal configures the L3 defragmentation anneal. The zero value
	// takes the package defaults (a short, seeded run); set Seed to
	// derive per-trial streams in campaigns.
	Anneal core.Options
	// StretchLimit caps the makespan increase (in schedule seconds) an
	// L2 downgrade may introduce. Zero means unlimited.
	StretchLimit int
	// Telemetry, when non-nil, receives a "recovery.ladder" span per
	// invocation with the chosen level and attempt count.
	Telemetry *telemetry.Tracer
	// Span, when non-zero, is the trace span the ladder spans nest
	// under (the simulator passes its "sim.run" span).
	Span telemetry.SpanID
	// Metrics, when non-nil, receives recovery.* counters: one
	// success/failure pair per level plus recovery.invocations and
	// recovery.abandoned_ops.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxLevel == LevelNone {
		o.MaxLevel = LevelDegrade
	}
	if o.Library == nil {
		o.Library = modlib.Table1()
	}
	if o.Anneal.ItersPerModule == 0 {
		o.Anneal.ItersPerModule = 60
	}
	if o.Anneal.WindowPatience == 0 {
		o.Anneal.WindowPatience = 2
	}
	return o
}

// State is the world as seen at fault-detection time, in placement
// coordinates. The ladder never mutates it.
type State struct {
	// Sched is the schedule being executed.
	Sched *schedule.Schedule
	// Placement is the current placement, one module per bound
	// schedule item in op-ID order.
	Placement *place.Placement
	// Array is the fabricated array the modules must stay inside.
	// Its origin must be (0,0) for L3 (the anneal core area).
	Array geom.Rect
	// Now is the schedule second at which the fault was detected.
	Now int
	// Fault is the newly detected faulty cell.
	Fault geom.Point
	// Faults is every known permanent fault including Fault; all of
	// them are obstacles for any new module site.
	Faults []geom.Point
	// Abandoned holds op IDs already abandoned by earlier L4 plans.
	Abandoned map[int]bool
}

// Downgrade records one L2 device swap.
type Downgrade struct {
	Module  int           // placement module index
	OpID    int           // schedule op ID
	From    modlib.Device // original binding
	To      modlib.Device // downgraded binding
	OldSpan geom.Interval
	NewSpan geom.Interval
}

// String summarises the downgrade.
func (d Downgrade) String() string {
	return fmt.Sprintf("module %d (op %d): %s %v -> %s %v, span %v -> %v",
		d.Module, d.OpID, d.From.Name, d.From.Size, d.To.Name, d.To.Size, d.OldSpan, d.NewSpan)
}

// Plan is the outcome of a successful ladder invocation: the new
// execution state the caller should adopt.
type Plan struct {
	// Level is the rung that produced the plan.
	Level Level
	// Relocations are the explicit module moves (L1, L2 and L4 plans;
	// L3 re-places wholesale and records none).
	Relocations []reconfig.Relocation
	// Downgrades are the L2 device swaps, empty elsewhere.
	Downgrades []Downgrade
	// Placement is the placement to adopt. Always non-nil.
	Placement *place.Placement
	// Sched is the schedule to adopt. It is the State's schedule
	// unless an L2 stretch rebuilt it.
	Sched *schedule.Schedule
	// StretchSec is the makespan change introduced by L2 (negative
	// when a downgrade to a faster device shortens the assay).
	StretchSec int
	// Abandon lists the op IDs newly abandoned by L4, sorted
	// ascending. Callers must stop executing them (and may salvage
	// any products their completed predecessors already produced).
	Abandon []int
}

// Attempt records one rung tried during a ladder invocation.
type Attempt struct {
	Level Level
	// Err is the failure reason; empty for the successful rung.
	Err string
}

// Report is the full audit trail of one ladder invocation.
type Report struct {
	Attempts []Attempt
}

// Final returns the level that succeeded, or LevelNone when every
// attempted rung failed.
func (r Report) Final() Level {
	for _, a := range r.Attempts {
		if a.Err == "" {
			return a.Level
		}
	}
	return LevelNone
}

// Ladder escalates through recovery levels. It is stateless between
// invocations and safe for sequential reuse.
type Ladder struct {
	opts Options
}

// New builds a ladder with the given options.
func New(opts Options) *Ladder {
	return &Ladder{opts: opts.withDefaults()}
}

// MaxLevel returns the highest rung this ladder will attempt.
func (l *Ladder) MaxLevel() Level { return l.opts.MaxLevel }

// Recover runs the ladder for the given state. It returns the first
// valid plan found, climbing L1 → MaxLevel, together with the audit
// report. A nil plan means every permitted rung failed — possible
// only when MaxLevel < LevelDegrade, since L4 cannot fail.
func (l *Ladder) Recover(st State) (*Plan, Report) {
	span := l.opts.Telemetry.StartChild("recovery.ladder", l.opts.Span)
	l.opts.Metrics.Counter("recovery.invocations").Inc()
	start := time.Now()
	var rep Report
	var plan *Plan
	for lv := LevelRelocate; lv <= l.opts.MaxLevel; lv++ {
		p, err := l.attempt(lv, st)
		if err != nil {
			rep.Attempts = append(rep.Attempts, Attempt{Level: lv, Err: err.Error()})
			l.opts.Metrics.Counter("recovery." + lv.String() + "_failures").Inc()
			continue
		}
		rep.Attempts = append(rep.Attempts, Attempt{Level: lv})
		l.opts.Metrics.Counter("recovery." + lv.String() + "_successes").Inc()
		plan = p
		break
	}
	level := LevelNone
	if plan != nil {
		level = plan.Level
		if len(plan.Abandon) > 0 {
			l.opts.Metrics.Counter("recovery.abandoned_ops").Add(int64(len(plan.Abandon)))
		}
	}
	l.opts.Metrics.Histogram("recovery.ladder_ms", telemetry.LatencyBuckets...).
		Observe(float64(time.Since(start).Microseconds()) / 1000)
	span.End(telemetry.Fields{
		"level":    level.String(),
		"attempts": len(rep.Attempts),
		"fault":    st.Fault.String(),
		"t_sec":    st.Now,
	})
	return plan, rep
}

func (l *Ladder) attempt(lv Level, st State) (*Plan, error) {
	switch lv {
	case LevelRelocate:
		return l.tryRelocate(st)
	case LevelDowngrade:
		return l.tryDowngrade(st)
	case LevelDefragment:
		return l.tryDefragment(st)
	case LevelDegrade:
		return l.tryDegrade(st)
	}
	return nil, fmt.Errorf("recovery: unknown level %d", int(lv))
}

// moduleOps returns the op ID of each placement module, in module
// index order (bound schedule items in op-ID order).
func moduleOps(s *schedule.Schedule) []int {
	var out []int
	for _, it := range s.BoundItems() {
		if it.Bound {
			out = append(out, it.Op.ID)
		}
	}
	return out
}

// affectedModules returns the indices of modules whose current site
// contains the fault and whose operation is unfinished and not
// abandoned — exactly the set partial reconfiguration must move.
func affectedModules(st State) []int {
	ops := moduleOps(st.Sched)
	var out []int
	for i := range st.Placement.Modules {
		if st.Placement.Modules[i].Span.End <= st.Now {
			continue
		}
		if st.Abandoned[ops[i]] {
			continue
		}
		if st.Placement.Rect(i).Contains(st.Fault) {
			out = append(out, i)
		}
	}
	return out
}

// otherFaults returns every known fault except the new one — the
// obstacle set for relocation planning.
func otherFaults(st State) []geom.Point {
	var out []geom.Point
	for _, f := range st.Faults {
		if f != st.Fault {
			out = append(out, f)
		}
	}
	return out
}
