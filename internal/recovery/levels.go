package recovery

import (
	"fmt"
	"sort"

	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
	"dmfb/internal/schedule"
)

// tryRelocate is L1: plain partial reconfiguration. Every affected
// module is relocated in module-index order, each plan seeing the
// previous applications, exactly reproducing the paper's on-line
// recovery — a fault the FTI marks uncovered fails here.
func (l *Ladder) tryRelocate(st State) (*Plan, error) {
	pl := st.Placement.Clone()
	obstacles := otherFaults(st)
	ops := moduleOps(st.Sched)
	var rels []reconfig.Relocation
	for _, mi := range affectedModules(st) {
		name := st.Sched.Graph.Op(ops[mi]).Name
		r, err := reconfig.PlanModule(pl, st.Array, mi, st.Fault, obstacles...)
		if err != nil {
			return nil, fmt.Errorf("partial reconfiguration failed for %s: %v", name, err)
		}
		if err := reconfig.Apply(pl, []reconfig.Relocation{r}); err != nil {
			return nil, fmt.Errorf("applying relocation of %s: %v", name, err)
		}
		rels = append(rels, r)
	}
	return &Plan{Level: LevelRelocate, Relocations: rels, Placement: pl, Sched: st.Sched}, nil
}

// tryDowngrade is L2: as L1, but a module that fits nowhere at its
// catalogue footprint is re-hosted on a smaller same-kind device. The
// operation restarts on the downgraded device at the fault time and
// every dependent operation is pushed later (a local schedule
// stretch), bounded by Options.StretchLimit.
func (l *Ladder) tryDowngrade(st State) (*Plan, error) {
	sched := st.Sched
	pl := st.Placement.Clone()
	obstacles := otherFaults(st)
	var rels []reconfig.Relocation
	var downs []Downgrade
	totalStretch := 0
	for _, mi := range affectedModules(st) {
		// The catalogue footprint first: downgrading is a last resort.
		if r, err := reconfig.PlanModule(pl, st.Array, mi, st.Fault, obstacles...); err == nil {
			if err := reconfig.Apply(pl, []reconfig.Relocation{r}); err == nil {
				rels = append(rels, r)
				continue
			}
		}
		ops := moduleOps(sched)
		opID := ops[mi]
		name := sched.Graph.Op(opID).Name
		cur := sched.Items[opID].Device
		placed := false
		for _, cand := range downgradeCandidates(l.opts.Library, cur) {
			r, err := reconfig.PlanModuleSized(pl, st.Array, mi, cand.Size, st.Fault, obstacles...)
			if err != nil {
				continue
			}
			next, stretch, err := stretchSchedule(sched, opID, cand, st.Now)
			if err != nil {
				continue
			}
			if l.opts.StretchLimit > 0 && totalStretch+stretch > l.opts.StretchLimit {
				continue
			}
			// Footprints and spans changed, so the placement must be
			// rebuilt against the new module set (conflict pairs are
			// cached per module set) before it can be validated.
			np := rebuiltPlacement(next, pl)
			if err := setSite(np, mi, cand.Size, r.To); err != nil {
				continue
			}
			if err := np.Validate(); err != nil {
				continue
			}
			d := Downgrade{
				Module:  mi,
				OpID:    opID,
				From:    cur,
				To:      cand,
				OldSpan: sched.Items[opID].Span,
				NewSpan: next.Items[opID].Span,
			}
			sched, pl = next, np
			totalStretch += stretch
			rels = append(rels, r)
			downs = append(downs, d)
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf(
				"recovery: module %s cannot be relocated at any catalogue footprint for fault at %v",
				name, st.Fault)
		}
	}
	plan := &Plan{
		Level:       LevelDowngrade,
		Relocations: rels,
		Downgrades:  downs,
		Placement:   pl,
		Sched:       sched,
		StretchSec:  totalStretch,
	}
	if err := ValidatePlan(st, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// tryDefragment is L3: full reconfiguration. The assay pauses while a
// short seeded anneal re-places the entire module set inside the
// fabricated array with every known fault as an obstacle,
// consolidating the spare cells scattered by earlier relocations. The
// returned placement shares the module set, so module indices keep
// their 1:1 correspondence with bound schedule items.
func (l *Ladder) tryDefragment(st State) (*Plan, error) {
	prob := core.Problem{
		Modules:   st.Placement.Modules,
		MaxW:      st.Array.MaxX(),
		MaxH:      st.Array.MaxY(),
		Obstacles: append([]geom.Point(nil), st.Faults...),
	}
	pl, _, err := core.AnnealArea(prob, l.opts.Anneal)
	if err != nil {
		return nil, fmt.Errorf("recovery: defragmentation anneal: %v", err)
	}
	return &Plan{Level: LevelDefragment, Placement: pl, Sched: st.Sched}, nil
}

// tryDegrade is L4: graceful degradation. Affected modules that still
// fit somewhere are relocated as in L1; each one that fits nowhere is
// abandoned together with its forward dependency closure (every
// operation that transitively needs its product). The rest of the
// assay continues. This level cannot fail: in the worst case every
// unfinished operation is abandoned.
func (l *Ladder) tryDegrade(st State) (*Plan, error) {
	pl := st.Placement.Clone()
	obstacles := otherFaults(st)
	ops := moduleOps(st.Sched)
	abandoned := make(map[int]bool, len(st.Abandoned))
	for id, v := range st.Abandoned {
		if v {
			abandoned[id] = true
		}
	}
	var rels []reconfig.Relocation
	var newAbandon []int
	for _, mi := range affectedModules(st) {
		if abandoned[ops[mi]] {
			continue
		}
		if r, err := reconfig.PlanModule(pl, st.Array, mi, st.Fault, obstacles...); err == nil {
			if err := reconfig.Apply(pl, []reconfig.Relocation{r}); err == nil {
				rels = append(rels, r)
				continue
			}
		}
		// Unrecoverable: abandon the op and everything downstream.
		queue := []int{ops[mi]}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if abandoned[v] {
				continue
			}
			abandoned[v] = true
			newAbandon = append(newAbandon, v)
			queue = append(queue, st.Sched.Graph.Succ(v)...)
		}
	}
	sort.Ints(newAbandon)
	return &Plan{
		Level:       LevelDegrade,
		Relocations: rels,
		Placement:   pl,
		Sched:       st.Sched,
		Abandon:     newAbandon,
	}, nil
}

// downgradeCandidates returns the same-kind devices strictly smaller
// than cur, largest first (least downgrade), ties broken by shorter
// duration then name for determinism.
func downgradeCandidates(lib *modlib.Library, cur modlib.Device) []modlib.Device {
	var out []modlib.Device
	for _, d := range lib.ForKind(cur.Kind) {
		if d.Name == cur.Name || d.Cells() >= cur.Cells() {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cells() != out[j].Cells() {
			return out[i].Cells() > out[j].Cells()
		}
		if out[i].Duration != out[j].Duration {
			return out[i].Duration < out[j].Duration
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// stretchSchedule rebinds opID to dev and restarts it at now (or its
// original start if it has not begun), then pushes every dependent
// operation just late enough to respect precedence, in topological
// order. Operations that already started are immovable; needing to
// move one is an error. Returns the new schedule and the makespan
// delta.
func stretchSchedule(s *schedule.Schedule, opID int, dev modlib.Device, now int) (*schedule.Schedule, int, error) {
	c := s.Clone()
	it := &c.Items[opID]
	begin := it.Span.Start
	if now > begin {
		begin = now
	}
	it.Device = dev
	it.Span = geom.Interval{Start: it.Span.Start, End: begin + dev.Duration}
	order, err := c.Graph.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	for _, v := range order {
		if v == opID {
			continue
		}
		vi := &c.Items[v]
		es := vi.Span.Start
		for _, p := range c.Graph.Pred(v) {
			if e := c.Items[p].Span.End; e > es {
				es = e
			}
		}
		if es == vi.Span.Start {
			continue
		}
		if vi.Span.Start < now {
			return nil, 0, fmt.Errorf(
				"recovery: stretch would move op %s, already started at %d", vi.Op.Name, vi.Span.Start)
		}
		d := vi.Span.Len()
		vi.Span = geom.Interval{Start: es, End: es + d}
	}
	old := c.Makespan
	c.Makespan = 0
	for i := range c.Items {
		if end := c.Items[i].Span.End; end > c.Makespan {
			c.Makespan = end
		}
	}
	return c, c.Makespan - old, nil
}

// rebuiltPlacement builds a fresh placement for the (possibly
// downgraded and stretched) schedule, carrying over the positions and
// orientations of old. Module count and order are invariant: one
// module per bound item in op-ID order.
func rebuiltPlacement(s *schedule.Schedule, old *place.Placement) *place.Placement {
	pl := place.New(place.FromSchedule(s))
	copy(pl.Pos, old.Pos)
	copy(pl.Rot, old.Rot)
	return pl
}

// setSite anchors module mi at the given site, deriving the
// orientation from how the site dimensions relate to size.
func setSite(p *place.Placement, mi int, size geom.Size, site geom.Rect) error {
	switch sz := site.Size(); {
	case sz == size:
		p.Rot[mi] = false
	case sz == size.Transpose():
		p.Rot[mi] = true
	default:
		return fmt.Errorf("recovery: site %v does not match footprint %v", site, size)
	}
	p.Pos[mi] = site.Origin()
	return nil
}
