package sim

import (
	"strings"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/core"
	"dmfb/internal/modlib"
	"dmfb/internal/schedule"
)

// TestOutputOpCollectsExplicitly exercises the Output path: the
// product droplet is routed to a collection port when its Output op
// fires, not at assay end.
func TestOutputOpCollectsExplicitly(t *testing.T) {
	lib := modlib.Table1()
	g := assay.New("with-output")
	d1 := g.AddOp("D1", assay.Dispense, "a")
	d2 := g.AddOp("D2", assay.Dispense, "b")
	m := g.AddOp("M", assay.Mix, "")
	o := g.AddOp("Out", assay.Output, "")
	g.MustEdge(d1, m)
	g.MustEdge(d2, m)
	g.MustEdge(m, o)
	b, err := schedule.Bind(g, lib, schedule.BindFastest)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := schedule.List(g, b, schedule.Options{OutputTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Makespan != 5 { // 3 s mix + 2 s output
		t.Fatalf("makespan = %d", sch.Makespan)
	}
	prob := core.FromSchedule(sch)
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 1, ItersPerModule: 60, WindowPatience: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(sch, p, Options{Trace: true})
	if !res.Completed {
		t.Fatalf("failed: %s\n%s", res.FailReason, eventDump(res))
	}
	if len(res.ProductFluids) != 1 || !strings.Contains(res.ProductFluids[0], "a") {
		t.Fatalf("products = %v", res.ProductFluids)
	}
	// The collect event fires at the Output op's start (t=3), before
	// the assay end.
	collectAt := -1
	for _, e := range res.Events {
		if e.Kind == "collect" {
			collectAt = e.TimeSec
		}
	}
	if collectAt != 3 {
		t.Errorf("collect at t=%d, want 3\n%s", collectAt, eventDump(res))
	}
}

// TestBorderZeroRejected: the simulator needs at least some chip; a
// degenerate placement still gets a ring.
func TestLargerBorderReducesCongestion(t *testing.T) {
	s, p := pcrSetup(t)
	r1 := Run(s, p, Options{Border: 1})
	r2 := Run(s, p, Options{Border: 3})
	if !r1.Completed || !r2.Completed {
		t.Fatalf("runs failed: %v / %v", r1.FailReason, r2.FailReason)
	}
	// Both complete; the wider ring may change transport counts but
	// determinism per configuration holds.
	r2b := Run(s, p, Options{Border: 3})
	if r2.TransportSteps != r2b.TransportSteps {
		t.Error("border-3 run not deterministic")
	}
}
