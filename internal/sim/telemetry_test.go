package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/telemetry"
)

// traceRecord mirrors the telemetry wire format for decoding.
type traceRecord struct {
	Seq    int            `json:"seq"`
	TUS    int64          `json:"t_us"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	Fields map[string]any `json:"fields"`
}

// The tracer mirror of the Event log must match it one-for-one: same
// order, same kinds, same timestamps, same detail strings — so trace
// consumers see exactly what the legacy API reports.
func TestTraceEventsMatchEventLog(t *testing.T) {
	s, p := ftSetup(t)
	cov := fti.ComputeOn(p, p.BoundingBox())

	// Pick a covered cell so the run includes a reconfiguration.
	var fault geom.Point
	found := false
	bb := p.BoundingBox()
	for y := 0; y < bb.H && !found; y++ {
		for x := 0; x < bb.W && !found; x++ {
			cell := geom.Point{X: bb.X + x, Y: bb.Y + y}
			if cov.CoveredAt(x, y) && len(p.ModulesAt(cell)) > 0 {
				fault = ArrayCell(Options{}, cell)
				found = true
			}
		}
	}
	if !found {
		t.Skip("placement has no covered module cell")
	}

	var buf strings.Builder
	tr := telemetry.New(&buf)
	reg := telemetry.NewRegistry()
	res := Run(s, p, Options{Telemetry: tr, Metrics: reg},
		FaultInjection{TimeSec: 1, Cell: fault})
	if !res.Completed {
		t.Fatalf("assay failed: %s", res.FailReason)
	}
	if len(res.Relocations) == 0 {
		t.Fatal("expected a relocation for a covered fault")
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	// Collect the sim.* events from the trace, in emission order.
	var traced []traceRecord
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec traceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid trace line %q: %v", line, err)
		}
		if rec.Kind == "event" && strings.HasPrefix(rec.Name, "sim.") {
			traced = append(traced, rec)
		}
	}

	if len(traced) != len(res.Events) {
		t.Fatalf("trace has %d sim events, Event log has %d", len(traced), len(res.Events))
	}
	for i, ev := range res.Events {
		got := traced[i]
		if got.Name != "sim."+ev.Kind {
			t.Errorf("event %d: trace name %q, log kind %q", i, got.Name, ev.Kind)
		}
		if sec, ok := got.Fields["t_sec"].(float64); !ok || int(sec) != ev.TimeSec {
			t.Errorf("event %d: trace t_sec %v, log %d", i, got.Fields["t_sec"], ev.TimeSec)
		}
		if detail, ok := got.Fields["detail"].(string); !ok || detail != ev.Detail {
			t.Errorf("event %d: trace detail %q, log %q", i, got.Fields["detail"], ev.Detail)
		}
	}

	// The sim.events counter mirrors the log length, and the run span
	// must have been emitted.
	if n := reg.Counter("sim.events").Value(); n != int64(len(res.Events)) {
		t.Errorf("sim.events counter = %d, want %d", n, len(res.Events))
	}
	if !strings.Contains(buf.String(), `"name":"sim.run"`) {
		t.Error("no sim.run span in trace")
	}
	snap := reg.Snapshot()
	if snap.Histograms["sim.reconfig_latency_ms"].Count == 0 {
		t.Error("no sim.reconfig_latency_ms observations despite a relocation")
	}
	if snap.Histograms["sim.route_steps"].Count == 0 {
		t.Error("no sim.route_steps observations")
	}
}

// Telemetry must not perturb the simulation: results with and without
// sinks attached must be identical.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	s, p := pcrSetup(t)
	plain := Run(s, p, Options{})
	var buf strings.Builder
	traced := Run(s, p, Options{Telemetry: telemetry.New(&buf), Metrics: telemetry.NewRegistry()})

	if plain.Completed != traced.Completed ||
		plain.MakespanSec != traced.MakespanSec ||
		plain.TransportSteps != traced.TransportSteps ||
		len(plain.Events) != len(traced.Events) {
		t.Fatalf("telemetry changed the result:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
	for i := range plain.Events {
		if plain.Events[i] != traced.Events[i] {
			t.Errorf("event %d differs: %v vs %v", i, plain.Events[i], traced.Events[i])
		}
	}
}
