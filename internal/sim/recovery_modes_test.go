package sim

import (
	"strings"
	"testing"

	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/recovery"
)

// uncoveredModuleCell returns an array cell that lies under a module
// and that the FTI marks uncovered — a permanent fault there defeats
// plain partial reconfiguration (L1) by construction.
func uncoveredModuleCell(t *testing.T, p *place.Placement, cov fti.Result) geom.Point {
	t.Helper()
	for y := 0; y < cov.Array.H; y++ {
		for x := 0; x < cov.Array.W; x++ {
			c := geom.Point{X: x, Y: y}
			if cov.CoveredAt(x, y) {
				continue
			}
			for i := range p.Modules {
				if p.Rect(i).Contains(c) {
					return c
				}
			}
		}
	}
	t.Skip("no uncovered module cell on this placement")
	return geom.Point{}
}

// A transient fault that heals under the bounded-retry re-test must
// not trigger any reconfiguration — even in a cell where a permanent
// fault would be fatal.
func TestTransientFaultHealsWithoutReconfiguration(t *testing.T) {
	s, p := pcrSetup(t)
	cov := fti.Compute(p)
	cell := uncoveredModuleCell(t, p, cov)

	res := Run(s, p, Options{},
		FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell), TransientProbes: 1})
	if !res.Completed || res.Outcome != OutcomeCompleted {
		t.Fatalf("transient fault failed the assay: %s\n%s", res.FailReason, eventDump(res))
	}
	if len(res.Relocations) != 0 {
		t.Errorf("transient fault triggered relocations: %v", res.Relocations)
	}
	if res.Recovery.TransientFaults != 1 {
		t.Errorf("TransientFaults = %d, want 1", res.Recovery.TransientFaults)
	}
	if res.Recovery.Invocations != 0 {
		t.Errorf("ladder invoked %d times for a healed fault", res.Recovery.Invocations)
	}
	healed := false
	for _, e := range res.Events {
		if e.Kind == "fault-healed" {
			healed = true
		}
	}
	if !healed {
		t.Error("no fault-healed event logged")
	}
	// The same fault, made permanent, must actually be fatal under L1
	// — otherwise this test proves nothing about the transient path.
	perm := Run(s, p, Options{}, FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)})
	if perm.Completed {
		t.Skip("chosen cell survives a permanent fault; transient case trivial")
	}
}

// RecoveryOff fails fast, with a typed reason, on a fault under any
// unfinished module.
func TestRecoveryOffFailsFast(t *testing.T) {
	s, p := pcrSetup(t)
	cell := geom.Point{X: p.Rect(0).X, Y: p.Rect(0).Y}
	res := Run(s, p, Options{Recovery: RecoveryOff},
		FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)})
	if res.Completed || res.Outcome != OutcomeFailed {
		t.Fatalf("recovery-off run did not fail (outcome %v)", res.Outcome)
	}
	if !strings.Contains(res.FailReason, "recovery disabled") {
		t.Errorf("FailReason = %q", res.FailReason)
	}
	if len(res.Relocations) != 0 {
		t.Errorf("recovery-off run relocated modules: %v", res.Relocations)
	}
}

// The full ladder must survive (completed or degraded — never a bare
// failure) a fault that defeats plain L1 relocation, and must report
// how deep it had to climb.
func TestLadderSurvivesL1FatalFault(t *testing.T) {
	s, p := pcrSetup(t)
	cov := fti.Compute(p)
	cell := uncoveredModuleCell(t, p, cov)

	l1 := Run(s, p, Options{}, FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)})
	if l1.Completed {
		t.Skip("chosen cell recoverable by L1; cannot demonstrate escalation")
	}

	res := Run(s, p, Options{Recovery: RecoveryLadder},
		FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)})
	if res.Outcome == OutcomeFailed {
		t.Fatalf("ladder run failed outright: %s\n%s", res.FailReason, eventDump(res))
	}
	if res.Recovery.Invocations != 1 {
		t.Errorf("ladder invocations = %d, want 1", res.Recovery.Invocations)
	}
	if res.Recovery.DeepestLevel < recovery.LevelDowngrade {
		t.Errorf("DeepestLevel = %v, want at least downgrade (L1 provably failed)",
			res.Recovery.DeepestLevel)
	}
	if res.Outcome == OutcomeDegraded {
		if len(res.Recovery.AbandonedOps) == 0 {
			t.Error("degraded outcome with no abandoned ops")
		}
		if !strings.Contains(res.FailReason, "degraded") {
			t.Errorf("degraded FailReason = %q", res.FailReason)
		}
	} else if len(res.ProductFluids) == 0 {
		t.Error("completed ladder run delivered no products")
	}
}

// Ladder-mode runs are deterministic: same inputs, same event log.
func TestLadderRunIsDeterministic(t *testing.T) {
	s, p := pcrSetup(t)
	cov := fti.Compute(p)
	cell := uncoveredModuleCell(t, p, cov)
	f := FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)}

	a := Run(s, p, Options{Recovery: RecoveryLadder, Trace: true, RecoverySeed: 9}, f)
	b := Run(s, p, Options{Recovery: RecoveryLadder, Trace: true, RecoverySeed: 9}, f)
	if eventDump(a) != eventDump(b) {
		t.Error("identical ladder runs produced different event logs")
	}
	if a.Outcome != b.Outcome || a.TransportSteps != b.TransportSteps {
		t.Errorf("outcome/transport differ: %v/%d vs %v/%d",
			a.Outcome, a.TransportSteps, b.Outcome, b.TransportSteps)
	}
}

// ParseRecoveryMode round-trips the CLI spellings.
func TestParseRecoveryMode(t *testing.T) {
	for _, m := range []RecoveryMode{RecoveryL1, RecoveryLadder, RecoveryOff} {
		got, err := ParseRecoveryMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseRecoveryMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseRecoveryMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	if m, err := ParseRecoveryMode(""); err != nil || m != RecoveryL1 {
		t.Errorf("empty mode = %v, %v; want default l1", m, err)
	}
}
