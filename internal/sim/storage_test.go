package sim

import (
	"fmt"
	"strings"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/core"
	"dmfb/internal/modlib"
	"dmfb/internal/schedule"
)

// TestStorageWorkload exercises Store modules end to end: a sample is
// mixed, held in an explicit storage unit while a second mix runs, and
// then combined with it — the "storage units" the paper lists among
// the reconfigurable virtual devices.
func TestStorageWorkload(t *testing.T) {
	lib := modlib.Table1()
	g := assay.New("storage")
	d1 := g.AddOp("D1", assay.Dispense, "a")
	d2 := g.AddOp("D2", assay.Dispense, "b")
	m1 := g.AddOp("M1", assay.Mix, "")
	g.MustEdge(d1, m1)
	g.MustEdge(d2, m1)
	st := g.AddOp("S1", assay.Store, "")
	g.MustEdge(m1, st)
	d3 := g.AddOp("D3", assay.Dispense, "c")
	d4 := g.AddOp("D4", assay.Dispense, "d")
	m2 := g.AddOp("M2", assay.Mix, "")
	g.MustEdge(d3, m2)
	g.MustEdge(d4, m2)
	m3 := g.AddOp("M3", assay.Mix, "")
	g.MustEdge(st, m3)
	g.MustEdge(m2, m3)

	mixer, _ := lib.Get(modlib.Mixer2x4)
	store, _ := lib.Get(modlib.StorageUnit)
	b := schedule.Binding{m1: mixer, m2: mixer, m3: mixer, st: store}
	// Serialise the two upstream mixes so storage has real dwell time.
	sch, err := schedule.List(g, b, schedule.Options{AreaBudget: 33})
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}

	prob := core.FromSchedule(sch)
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 4, ItersPerModule: 120, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(sch, p, Options{Trace: true})
	if !res.Completed {
		t.Fatalf("storage assay failed: %s\n%s", res.FailReason, eventDump(res))
	}
	if len(res.ProductFluids) != 1 {
		t.Fatalf("products = %v", res.ProductFluids)
	}
	for _, fluid := range []string{"a", "b", "c", "d"} {
		if !strings.Contains(res.ProductFluids[0], fluid) {
			t.Errorf("final product %q missing %s", res.ProductFluids[0], fluid)
		}
	}
}

// TestSimInvariantNoOverlapDroplets: after every event of a traced
// run, the event log never reports a constraint violation (the
// fluidics layer would have errored the run), and transport accounting
// is consistent with the trace.
func TestSimTransportAccounting(t *testing.T) {
	s, p := pcrSetup(t)
	res := Run(s, p, Options{Trace: true})
	if !res.Completed {
		t.Fatal(res.FailReason)
	}
	// Sum the per-route/merge steps in the trace; parking and
	// collection also move droplets, so the total must be >= the sum.
	sum := 0
	for _, e := range res.Events {
		if e.Kind == "route" || e.Kind == "merge" {
			var steps int
			if i := strings.LastIndex(e.Detail, "("); i >= 0 {
				if _, err := fmt.Sscanf(e.Detail[i:], "(%d steps)", &steps); err == nil {
					sum += steps
				}
			}
		}
	}
	if sum == 0 || sum > res.TransportSteps {
		t.Errorf("trace steps %d inconsistent with total %d", sum, res.TransportSteps)
	}
}
