// Package sim is a discrete-event simulator for digital microfluidic
// biochips: it executes a synthesised schedule on a placed array,
// dispensing droplets from boundary ports, routing them into
// reconfigurable modules, running the module operations, parking
// intermediate droplets on free cells, and collecting products.
//
// Its purpose in this reproduction is to exercise the paper's fault
// tolerance story end to end: a cell fault injected mid-assay triggers
// partial reconfiguration (Section 5.1) — the affected module is
// relocated by reprogramming electrodes, its droplet is re-routed, and
// the assay completes on the reconfigured array. Whether recovery is
// possible for a given fault is exactly what the placement's fault
// tolerance index predicts.
//
// Time model: module operations take whole schedule seconds (as
// synthesised); droplet transport takes one control step (10 ms) per
// cell and is accounted separately as transport overhead, since it is
// two orders of magnitude faster than mixing. Faults take effect at
// schedule-second boundaries.
//
// Geometry: the fabricated chip is the placed array (the placement's
// bounding box) plus a one-cell (configurable) transport ring where
// the dispense and collection ports sit, mirroring Figure 1(b) of the
// paper where I/O ports surround the array.
package sim

import (
	"fmt"
	"sort"
	"time"

	"dmfb/internal/assay"
	"dmfb/internal/core"
	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
	"dmfb/internal/recovery"
	"dmfb/internal/router"
	"dmfb/internal/schedule"
	"dmfb/internal/telemetry"
	"dmfb/internal/testdrop"
)

// RecoveryMode selects how the simulator reacts to a permanent fault
// under an unfinished module.
type RecoveryMode int

const (
	// RecoveryL1 (the default) relocates affected modules in place —
	// the paper's partial reconfiguration, Section 5.1. A fault no
	// relocation can fix fails the assay.
	RecoveryL1 RecoveryMode = iota
	// RecoveryLadder escalates through the full recovery ladder:
	// relocate, downgrade with schedule stretch, defragment with a
	// short seeded re-anneal, and finally graceful degradation
	// (abandoning unrecoverable dependency cones). A fault can degrade
	// the assay but never crash it.
	RecoveryLadder
	// RecoveryOff disables reconfiguration: a permanent fault under an
	// unfinished module fails the assay immediately. Useful as a
	// campaign baseline.
	RecoveryOff
)

// String names the mode as accepted by ParseRecoveryMode.
func (m RecoveryMode) String() string {
	switch m {
	case RecoveryL1:
		return "l1"
	case RecoveryLadder:
		return "ladder"
	case RecoveryOff:
		return "off"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// ParseRecoveryMode parses "l1", "ladder" or "off".
func ParseRecoveryMode(s string) (RecoveryMode, error) {
	switch s {
	case "l1", "":
		return RecoveryL1, nil
	case "ladder":
		return RecoveryLadder, nil
	case "off":
		return RecoveryOff, nil
	}
	return RecoveryL1, fmt.Errorf("sim: unknown recovery mode %q (want l1, ladder or off)", s)
}

// Options configures a simulation run.
type Options struct {
	// Border is the width of the transport ring around the placed
	// array. Default 1.
	Border int
	// Trace, when true, records an Event for every droplet action;
	// otherwise only milestones (op start/end, fault, reconfiguration)
	// are logged.
	Trace bool
	// Recovery selects the fault response: RecoveryL1 (default),
	// RecoveryLadder or RecoveryOff.
	Recovery RecoveryMode
	// RecoverySeed seeds the L3 defragmentation anneal (ladder mode
	// only). Campaigns derive a per-trial seed so runs stay
	// reproducible.
	RecoverySeed int64
	// RecoveryStretchLimit caps the schedule stretch (seconds) an L2
	// downgrade may introduce. Zero means unlimited.
	RecoveryStretchLimit int
	// Telemetry, when non-nil, mirrors every Event as a structured
	// "sim.<kind>" trace record and wraps the run in a "sim.run" span.
	// The Events slice in Result is unchanged either way.
	Telemetry *telemetry.Tracer
	// Span, when non-zero, is the trace span the "sim.run" span nests
	// under — campaigns pass the trial span so traces form a
	// campaign→trial→sim→recovery hierarchy.
	Span telemetry.SpanID
	// Metrics, when non-nil, receives sim.* metrics: event counts,
	// transport totals, droplet route lengths and the latency of
	// partial reconfiguration (sim.reconfig_latency_ms).
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Border == 0 {
		o.Border = 1
	}
	return o
}

// FaultInjection schedules a cell failure at a schedule-time second.
// The cell is in chip coordinates (use ArrayCell to address cells of
// the placed array).
type FaultInjection struct {
	TimeSec int
	Cell    geom.Point
	// TransientProbes, when positive, makes the fault transient: the
	// cell refuses that many re-test probes and then heals. The
	// simulator's bounded-retry classification (testdrop) detects a
	// transient that heals within the retry budget and skips
	// reconfiguration entirely. Zero means permanent.
	TransientProbes int
}

// Event is one log entry of a run.
type Event struct {
	TimeSec int
	Kind    string // "dispense", "route", "merge", "op-start", "op-end", "fault", "reconfig", "park", "collect", "fail"
	Detail  string
}

func (e Event) String() string {
	return fmt.Sprintf("t=%-3d %-9s %s", e.TimeSec, e.Kind, e.Detail)
}

// Outcome classifies how a run ended. It refines the Completed bool:
// a degraded run delivered some products but abandoned at least one
// operation, which counts as neither completed nor failed.
type Outcome int

const (
	// OutcomeFailed: the assay aborted and delivered nothing useful.
	OutcomeFailed Outcome = iota
	// OutcomeCompleted: every operation ran to completion.
	OutcomeCompleted
	// OutcomeDegraded: the assay ran to the end but one or more
	// operations were abandoned by graceful degradation (L4); the
	// surviving products were collected.
	OutcomeDegraded
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeFailed:
		return "failed"
	}
	return fmt.Sprintf("outcome-%d", int(o))
}

// RecoveryReport aggregates the recovery activity of one run.
type RecoveryReport struct {
	// Invocations counts ladder invocations (one per permanent
	// in-array fault that was classified, in any recovery mode but
	// RecoveryOff).
	Invocations int
	// DeepestLevel is the highest rung any invocation had to climb.
	DeepestLevel recovery.Level
	// Attempts concatenates the audit trails of every invocation.
	Attempts []recovery.Attempt
	// AbandonedOps names the operations abandoned by L4, in
	// abandonment order.
	AbandonedOps []string
	// TransientFaults counts faults that healed under bounded-retry
	// re-test and needed no reconfiguration.
	TransientFaults int
	// StretchSec is the cumulative schedule stretch introduced by L2
	// downgrades (negative if downgrades net shortened the assay).
	StretchSec int
}

// Result reports a completed (or failed) simulation.
type Result struct {
	Completed      bool
	Outcome        Outcome
	FailReason     string
	MakespanSec    int // schedule seconds until the last operation ended
	TransportSteps int // total single-cell droplet moves
	// TransportMS is the transport overhead in milliseconds
	// (TransportSteps × the 10 ms control step).
	TransportMS int
	Relocations []reconfig.Relocation
	Events      []Event
	// ProductFluids are the fluid labels of the droplets collected at
	// the end — for PCR, the composition of the master mix.
	ProductFluids []string
	// Recovery audits the run's fault handling.
	Recovery RecoveryReport
}

// Simulator holds the mutable state of one run.
type simulator struct {
	opts      Options
	sched     *schedule.Schedule
	placement *place.Placement // cloned; mutated by reconfiguration
	array     geom.Rect        // placed array in placement coordinates
	chip      *fluidics.Chip
	state     *fluidics.State
	ports     []geom.Point // border port cells, chip coordinates
	nextPort  int
	// products[op] holds droplet IDs available for successors.
	products map[int][]int
	// inModule[op] is the droplet currently inside the op's module.
	inModule map[int]int
	// ladder plans fault recovery (nil when Recovery is RecoveryOff).
	ladder *recovery.Ladder
	// abandoned holds op IDs dropped by graceful degradation.
	abandoned map[int]bool
	res       *Result
	// span is the id of this run's "sim.run" trace span; event
	// records nest under it.
	span telemetry.SpanID
}

// ArrayCell converts placed-array coordinates (as used by placements
// and the FTI) to chip coordinates for the given options.
func ArrayCell(opts Options, p geom.Point) geom.Point {
	o := opts.withDefaults()
	return geom.Point{X: p.X + o.Border, Y: p.Y + o.Border}
}

// Run executes the schedule on the placement. The placement must
// correspond to the schedule's bound items, in order (as produced by
// place.FromSchedule plus any placer). The caller's placement is not
// modified.
func Run(s *schedule.Schedule, p *place.Placement, opts Options, faults ...FaultInjection) Result {
	o := opts.withDefaults()
	sim := &simulator{
		opts:      o,
		sched:     s,
		products:  make(map[int][]int),
		inModule:  make(map[int]int),
		abandoned: make(map[int]bool),
		res:       &Result{},
	}
	span := o.Telemetry.StartChild("sim.run", o.Span)
	sim.span = span.ID()
	if o.Recovery != RecoveryOff {
		maxLevel := recovery.LevelRelocate
		if o.Recovery == RecoveryLadder {
			maxLevel = recovery.LevelDegrade
		}
		sim.ladder = recovery.New(recovery.Options{
			MaxLevel:     maxLevel,
			Anneal:       core.Options{Seed: o.RecoverySeed},
			StretchLimit: o.RecoveryStretchLimit,
			Telemetry:    o.Telemetry,
			Span:         sim.span,
			Metrics:      o.Metrics,
		})
	}
	defer func() {
		span.End(telemetry.Fields{
			"completed":       sim.res.Completed,
			"outcome":         sim.res.Outcome.String(),
			"makespan_sec":    sim.res.MakespanSec,
			"transport_steps": sim.res.TransportSteps,
			"relocations":     len(sim.res.Relocations),
		})
		o.Metrics.Gauge("sim.transport_steps").Set(float64(sim.res.TransportSteps))
		o.Metrics.Gauge("sim.transport_ms").Set(float64(sim.res.TransportMS))
	}()
	if err := sim.setup(p); err != nil {
		return sim.fail(0, err.Error())
	}
	if err := sim.runEvents(faults); err != nil {
		return *sim.res
	}
	// The schedule pointer may have been swapped by an L2 stretch, so
	// the makespan is read from the simulator's schedule, not the
	// caller's.
	sim.collect(sim.sched.Makespan)
	sim.res.MakespanSec = sim.sched.Makespan
	if len(sim.abandoned) > 0 {
		sim.res.Outcome = OutcomeDegraded
		sim.res.FailReason = fmt.Sprintf("degraded: %d operation(s) abandoned",
			len(sim.res.Recovery.AbandonedOps))
	} else {
		sim.res.Completed = true
		sim.res.Outcome = OutcomeCompleted
	}
	sim.finish()
	return *sim.res
}

func (sim *simulator) setup(p *place.Placement) error {
	items := sim.sched.BoundItems()
	if len(items) != len(p.Modules) {
		return fmt.Errorf("sim: placement has %d modules, schedule binds %d", len(p.Modules), len(items))
	}
	for i, it := range items {
		m := p.Modules[i]
		if m.Name != it.Op.Name || m.Span != it.Span {
			return fmt.Errorf("sim: placement module %d (%s %v) does not match schedule item %s %v",
				i, m.Name, m.Span, it.Op.Name, it.Span)
		}
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("sim: placement invalid: %w", err)
	}
	sim.placement = p.Clone()
	sim.placement.Normalize()
	bb := sim.placement.BoundingBox()
	sim.array = bb
	b := sim.opts.Border
	sim.chip = fluidics.NewChip(bb.W+2*b, bb.H+2*b)
	sim.state = fluidics.NewState(sim.chip)
	sim.ports = borderPorts(sim.chip)
	if len(sim.ports) == 0 {
		return fmt.Errorf("sim: chip too small for any boundary port")
	}
	return nil
}

// borderPorts enumerates the transport-ring cells clockwise from the
// origin, keeping every third so simultaneous port droplets respect
// separation.
func borderPorts(chip *fluidics.Chip) []geom.Point {
	w, h := chip.W(), chip.H()
	var ring []geom.Point
	for x := 0; x < w; x++ {
		ring = append(ring, geom.Point{X: x, Y: 0})
	}
	for y := 1; y < h; y++ {
		ring = append(ring, geom.Point{X: w - 1, Y: y})
	}
	for x := w - 2; x >= 0; x-- {
		ring = append(ring, geom.Point{X: x, Y: h - 1})
	}
	for y := h - 2; y >= 1; y-- {
		ring = append(ring, geom.Point{X: 0, Y: y})
	}
	var ports []geom.Point
	for i := 0; i < len(ring); i += 3 {
		ports = append(ports, ring[i])
	}
	return ports
}

// toChip converts placement coordinates to chip coordinates.
func (sim *simulator) toChip(p geom.Point) geom.Point {
	return geom.Point{X: p.X + sim.opts.Border, Y: p.Y + sim.opts.Border}
}

// toPlacement converts chip coordinates to placement coordinates.
func (sim *simulator) toPlacement(p geom.Point) geom.Point {
	return geom.Point{X: p.X - sim.opts.Border, Y: p.Y - sim.opts.Border}
}

// moduleRect returns module mi's rectangle in chip coordinates.
func (sim *simulator) moduleRect(mi int) geom.Rect {
	r := sim.placement.Rect(mi)
	return r.Translate(sim.opts.Border, sim.opts.Border)
}

// moduleCenter returns the target cell for droplets inside module mi.
func (sim *simulator) moduleCenter(mi int) geom.Point {
	r := sim.moduleRect(mi)
	return geom.Point{X: r.X + (r.W-1)/2, Y: r.Y + (r.H-1)/2}
}

// boundIndex maps op IDs to placement module indices.
func (sim *simulator) boundIndex() map[int]int {
	m := make(map[int]int)
	for i, it := range sim.sched.BoundItems() {
		m[it.Op.ID] = i
	}
	return m
}

// activeRects returns the chip-coordinate rectangles of modules active
// at second t, excluding the given op IDs.
func (sim *simulator) activeRects(t int, excludeOps ...int) []geom.Rect {
	skip := map[int]bool{}
	for _, e := range excludeOps {
		skip[e] = true
	}
	var out []geom.Rect
	for i, it := range sim.sched.BoundItems() {
		if skip[it.Op.ID] || sim.abandoned[it.Op.ID] || !it.Span.Contains(t) {
			continue
		}
		out = append(out, sim.moduleRect(i))
	}
	return out
}

// otherDroplets returns positions of all droplets except the listed IDs.
func (sim *simulator) otherDroplets(except ...int) []geom.Point {
	skip := map[int]bool{}
	for _, id := range except {
		skip[id] = true
	}
	var out []geom.Point
	for _, d := range sim.state.Droplets() {
		if !skip[d.ID] {
			out = append(out, d.Pos)
		}
	}
	return out
}

func (sim *simulator) log(t int, kind, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	sim.res.Events = append(sim.res.Events, Event{TimeSec: t, Kind: kind, Detail: detail})
	sim.opts.Telemetry.EventIn("sim."+kind, sim.span, telemetry.Fields{"t_sec": t, "detail": detail})
	sim.opts.Metrics.Counter("sim.events").Inc()
}

func (sim *simulator) trace(t int, kind, format string, args ...any) {
	if sim.opts.Trace {
		sim.log(t, kind, format, args...)
	}
}

func (sim *simulator) fail(t int, reason string) Result {
	sim.res.Completed = false
	sim.res.Outcome = OutcomeFailed
	sim.res.FailReason = reason
	sim.log(t, "fail", "%s", reason)
	sim.finish()
	return *sim.res
}

func (sim *simulator) finish() {
	if sim.state != nil {
		sim.res.TransportSteps = sim.state.Moves()
	}
	sim.res.TransportMS = sim.res.TransportSteps * fluidics.StepMS
}

// runEvents drives the event loop. Event times are recomputed after
// every step rather than precomputed, because an L2 downgrade can
// stretch the schedule mid-run and move every later start and end. It
// returns a non-nil error after recording a failure.
func (sim *simulator) runEvents(faults []FaultInjection) error {
	t := 0
	for {
		for _, f := range faults {
			if f.TimeSec == t {
				if err := sim.injectFault(t, f); err != nil {
					sim.fail(t, err.Error())
					return err
				}
			}
		}
		if err := sim.processEnds(t); err != nil {
			sim.fail(t, err.Error())
			return err
		}
		if err := sim.processStarts(t); err != nil {
			sim.fail(t, err.Error())
			return err
		}
		next := -1
		consider := func(x int) {
			if x > t && (next < 0 || x < next) {
				next = x
			}
		}
		for _, it := range sim.sched.Items {
			consider(it.Span.Start)
			consider(it.Span.End)
		}
		for _, f := range faults {
			consider(f.TimeSec)
		}
		if next < 0 {
			return nil
		}
		t = next
	}
}

// injectFault marks the cell faulty, classifies the fault by bounded
// retry, and — if it is permanent and under the array — invokes the
// recovery ladder (or fails, with recovery off).
func (sim *simulator) injectFault(t int, f FaultInjection) error {
	cell := f.Cell
	if f.TransientProbes > 0 {
		if err := sim.chip.InjectTransientFault(cell, f.TransientProbes); err != nil {
			return err
		}
	} else if err := sim.chip.InjectFault(cell); err != nil {
		return err
	}
	sim.log(t, "fault", "cell %v failed", cell)
	// On-line re-test before any reconfiguration: a transient fault
	// that passes a retry probe heals in place and costs only the
	// backoff budget — no relocation (and no permanent obstacle).
	cl := testdrop.ClassifyFault(sim.chip, cell, testdrop.RetryPolicy{})
	if cl.Class == testdrop.FaultTransient {
		sim.res.Recovery.TransientFaults++
		sim.opts.Metrics.Counter("sim.transient_faults").Inc()
		sim.log(t, "fault-healed", "cell %v transient, healed after %d probes (%d backoff steps); no reconfiguration",
			cell, cl.Probes, cl.WaitSteps)
		return nil
	}
	pc := sim.toPlacement(cell)
	if !sim.array.Contains(pc) {
		return nil // transport-ring fault: routing will steer around it
	}
	if sim.ladder == nil {
		for i, it := range sim.sched.BoundItems() {
			if it.Span.End <= t || sim.abandoned[it.Op.ID] || !sim.placement.Rect(i).Contains(pc) {
				continue
			}
			return fmt.Errorf("fault at %v disables module %s (recovery disabled)", cell, it.Op.Name)
		}
		return nil
	}
	// Every permanent array fault (the new one included) constrains
	// the recovery plan. chip.Faults is row-major, so the obstacle set
	// is deterministic.
	var known []geom.Point
	for _, fc := range sim.chip.Faults() {
		if p := sim.toPlacement(fc); sim.array.Contains(p) {
			known = append(known, p)
		}
	}
	reconfigStart := time.Now()
	plan, rep := sim.ladder.Recover(recovery.State{
		Sched:     sim.sched,
		Placement: sim.placement,
		Array:     sim.array,
		Now:       t,
		Fault:     pc,
		Faults:    known,
		Abandoned: sim.abandoned,
	})
	sim.opts.Metrics.Histogram("sim.reconfig_latency_ms", telemetry.LatencyBuckets...).
		Observe(float64(time.Since(reconfigStart).Microseconds()) / 1000)
	sim.res.Recovery.Invocations++
	sim.res.Recovery.Attempts = append(sim.res.Recovery.Attempts, rep.Attempts...)
	if plan == nil {
		// Possible only below LevelDegrade (L1 mode): surface the last
		// rung's planning error as the failure reason.
		last := rep.Attempts[len(rep.Attempts)-1]
		return fmt.Errorf("%s", last.Err)
	}
	if plan.Level > sim.res.Recovery.DeepestLevel {
		sim.res.Recovery.DeepestLevel = plan.Level
	}
	return sim.adoptPlan(t, plan)
}

// adoptPlan swaps in a recovery plan's placement and schedule, records
// its events, discards the droplets of abandoned operations, and moves
// the droplets of running modules whose site changed.
func (sim *simulator) adoptPlan(t int, plan *recovery.Plan) error {
	items := sim.sched.BoundItems()
	// Sites of running modules before the swap, to detect moves.
	oldRects := make(map[int]geom.Rect)
	for i, it := range items {
		if it.Span.Contains(t) && !sim.abandoned[it.Op.ID] {
			oldRects[i] = sim.placement.Rect(i)
		}
	}
	sim.placement = plan.Placement
	if plan.Sched != sim.sched {
		sim.sched = plan.Sched
		sim.res.Recovery.StretchSec += plan.StretchSec
	}
	sim.res.Relocations = append(sim.res.Relocations, plan.Relocations...)
	for _, rel := range plan.Relocations {
		sim.log(t, "reconfig", "module %s relocated %v -> %v",
			items[rel.Module].Op.Name, rel.From, rel.To)
	}
	for _, d := range plan.Downgrades {
		sim.log(t, "downgrade", "module %s re-hosted on %s %v, span %v -> %v",
			items[d.Module].Op.Name, d.To.Name, d.To.Size, d.OldSpan, d.NewSpan)
	}
	if plan.Level == recovery.LevelDefragment {
		sim.log(t, "reconfig", "defragmentation re-placed %d modules", len(plan.Placement.Modules))
	}
	for _, id := range plan.Abandon {
		sim.abandoned[id] = true
		name := sim.sched.Graph.Op(id).Name
		sim.res.Recovery.AbandonedOps = append(sim.res.Recovery.AbandonedOps, name)
		sim.log(t, "abandon", "op %s abandoned (dependency cone unrecoverable)", name)
		if did, ok := sim.inModule[id]; ok {
			sim.state.Remove(did)
			delete(sim.inModule, id)
			sim.trace(t, "abandon", "droplet %d of %s discarded", did, name)
		}
	}
	// Re-home the droplets of modules that are running right now and
	// were moved by the plan: clear the new site of bystanders, then
	// route the module's own droplet over. Modules that have not
	// started yet need nothing — their start event evicts and routes
	// as usual. (A new site may legally overlap a module active now
	// with a disjoint span.)
	for i, it := range sim.sched.BoundItems() {
		old, wasRunning := oldRects[i]
		if !wasRunning || sim.abandoned[it.Op.ID] || sim.placement.Rect(i) == old {
			continue
		}
		if err := sim.evictDroplets(t, sim.moduleRect(i), it.Op.ID); err != nil {
			return err
		}
		if id, ok := sim.inModule[it.Op.ID]; ok {
			if err := sim.routeDroplet(t, id, sim.moduleCenter(i), it.Op.ID); err != nil {
				return fmt.Errorf("re-routing droplet of %s: %v", it.Op.Name, err)
			}
		}
	}
	return nil
}

// processEnds completes operations whose span ends at t.
func (sim *simulator) processEnds(t int) error {
	bi := sim.boundIndex()
	for _, it := range sim.sched.Items {
		if !it.Bound || it.Span.End != t || it.Span.Empty() || sim.abandoned[it.Op.ID] {
			continue
		}
		op := it.Op
		id, ok := sim.inModule[op.ID]
		if !ok {
			return fmt.Errorf("op %s ended with no droplet inside", op.Name)
		}
		delete(sim.inModule, op.ID)
		succs := sim.sched.Graph.Succ(op.ID)
		if op.Kind.Reconfigurable() && len(succs) > 1 {
			// Dilution: split the mixed droplet into one per successor.
			d1, d2, err := sim.state.Split(id, true)
			if err != nil {
				return fmt.Errorf("splitting output of %s: %v", op.Name, err)
			}
			sim.products[op.ID] = []int{d1.ID, d2.ID}
		} else {
			sim.products[op.ID] = []int{id}
		}
		sim.log(t, "op-end", "%s done in module %v", op.Name, sim.moduleRect(bi[op.ID]))
	}
	return nil
}

// processStarts launches operations whose span starts at t, in op-ID
// order. Boundary ops (dispense handled lazily, output immediately).
func (sim *simulator) processStarts(t int) error {
	bi := sim.boundIndex()
	for _, it := range sim.sched.Items {
		if it.Span.Start != t || sim.abandoned[it.Op.ID] {
			continue
		}
		op := it.Op
		switch {
		case op.Kind == assay.Dispense:
			// Lazy: the droplet is dispensed when its consumer starts.
			continue
		case op.Kind == assay.Output:
			if err := sim.outputOp(t, op.ID); err != nil {
				return err
			}
		case it.Bound:
			if it.Span.Empty() {
				continue
			}
			if err := sim.startModuleOp(t, op.ID, bi[op.ID]); err != nil {
				return err
			}
		}
	}
	return nil
}

// startModuleOp brings the inputs into the module and starts it.
func (sim *simulator) startModuleOp(t, opID, mi int) error {
	name := sim.sched.Graph.Op(opID).Name
	rect := sim.moduleRect(mi)
	if err := sim.evictDroplets(t, rect, opID); err != nil {
		return err
	}
	sim.log(t, "op-start", "%s in module %v", name, rect)

	var inputs []int
	for _, pred := range sim.sched.Graph.Pred(opID) {
		id, err := sim.takeProduct(t, pred, opID)
		if err != nil {
			return err
		}
		inputs = append(inputs, id)
	}
	if len(inputs) == 0 {
		return fmt.Errorf("op %s started with no inputs", name)
	}

	center := sim.moduleCenter(mi)
	// First droplet goes to the centre.
	if err := sim.routeDroplet(t, inputs[0], center, opID); err != nil {
		return fmt.Errorf("routing input of %s: %v", name, err)
	}
	merged := inputs[0]
	// Remaining droplets stage at distance 2 and coalesce.
	for _, id := range inputs[1:] {
		if err := sim.mergeInto(t, merged, id, opID, center); err != nil {
			return fmt.Errorf("merging inputs of %s: %v", name, err)
		}
	}
	sim.inModule[opID] = merged
	return nil
}

// takeProduct obtains a droplet for consumerOp from pred: dispensing
// lazily for dispense ops, popping a stored product otherwise.
func (sim *simulator) takeProduct(t, pred, consumerOp int) (int, error) {
	op := sim.sched.Graph.Op(pred)
	if op.Kind == assay.Dispense {
		return sim.dispense(t, op.Fluid, consumerOp)
	}
	avail := sim.products[pred]
	if len(avail) == 0 {
		return 0, fmt.Errorf("no product droplet available from %s", op.Name)
	}
	id := avail[0]
	sim.products[pred] = avail[1:]
	return id, nil
}

// dispense creates a droplet at a free port.
func (sim *simulator) dispense(t int, fluid string, consumerOp int) (int, error) {
	for try := 0; try < len(sim.ports); try++ {
		port := sim.ports[(sim.nextPort+try)%len(sim.ports)]
		if sim.chip.IsFaulty(port) {
			continue
		}
		d, err := sim.state.Dispense(fluid, port)
		if err != nil {
			continue // occupied or separation-blocked; try next port
		}
		sim.nextPort = (sim.nextPort + try + 1) % len(sim.ports)
		sim.trace(t, "dispense", "%s at port %v (droplet %d)", fluid, port, d.ID)
		return d.ID, nil
	}
	return 0, fmt.Errorf("no free dispense port for %s", fluid)
}

// routeDroplet moves droplet id to target, avoiding active modules
// (except the op's own module), faults and other droplets. A droplet
// that currently sits inside another active module's region — e.g. a
// product parked where a module is about to start — first escapes to a
// free cell and then routes normally.
func (sim *simulator) routeDroplet(t, id int, target geom.Point, ownOp int) error {
	if err := sim.escapeIfInsideKeepOut(t, id, ownOp); err != nil {
		return err
	}
	d, ok := sim.state.Droplet(id)
	if !ok {
		return fmt.Errorf("unknown droplet %d", id)
	}
	path, err := router.Route(sim.chip, router.Request{
		From:          d.Pos,
		To:            target,
		KeepOut:       sim.activeRects(t, ownOp),
		AvoidDroplets: sim.otherDroplets(id),
	})
	if err != nil {
		return err
	}
	if err := sim.state.FollowPath(id, path); err != nil {
		return err
	}
	sim.opts.Metrics.Histogram("sim.route_steps", telemetry.PathLenBuckets...).
		Observe(float64(router.Steps(path)))
	sim.trace(t, "route", "droplet %d %v -> %v (%d steps)", id, path[0], target, router.Steps(path))
	return nil
}

// escapeIfInsideKeepOut parks the droplet outside every active module
// if its current cell lies inside one it does not belong to.
func (sim *simulator) escapeIfInsideKeepOut(t, id, ownOp int) error {
	d, ok := sim.state.Droplet(id)
	if !ok {
		return fmt.Errorf("unknown droplet %d", id)
	}
	for _, r := range sim.activeRects(t, ownOp) {
		if r.Contains(d.Pos) {
			return sim.parkDroplet(t, id, ownOp)
		}
	}
	return nil
}

// mergeInto routes droplet id next to the droplet `into` waiting at
// center and coalesces them. The droplet is routed to a staging cell
// at Chebyshev distance 2 (just outside the partner's separation
// halo), takes one MoveToMerge step onto an approach cell adjacent to
// the partner, and merges. All cells involved must be healthy; the
// enumeration tries every (approach, staging) pair deterministically
// so a fault next to the centre never wedges the operation.
func (sim *simulator) mergeInto(t, into, id, ownOp int, center geom.Point) error {
	if err := sim.escapeIfInsideKeepOut(t, id, ownOp); err != nil {
		return err
	}
	d, ok := sim.state.Droplet(id)
	if !ok {
		return fmt.Errorf("unknown droplet %d", id)
	}
	if chebyshev(d.Pos, center) <= 1 {
		if _, err := sim.state.Merge(into, id); err != nil {
			return err
		}
		sim.trace(t, "merge", "droplet %d into %d at %v", id, into, center)
		return nil
	}
	keepOut := sim.activeRects(t, ownOp)
	avoid := sim.otherDroplets(id)

	var approaches []geom.Point
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			approaches = append(approaches, geom.Point{X: center.X + dx, Y: center.Y + dy})
		}
	}
	sortNearest(approaches, d.Pos)
	for _, a := range approaches {
		if !sim.chip.In(a) || sim.chip.IsFaulty(a) || !sim.state.SeparationOK(a, id, into) {
			continue
		}
		stagings := a.Neighbors4()
		for _, s := range stagings {
			if chebyshev(s, center) != 2 || !sim.chip.In(s) || sim.chip.IsFaulty(s) {
				continue
			}
			path, err := router.Route(sim.chip, router.Request{
				From: d.Pos, To: s, KeepOut: keepOut, AvoidDroplets: avoid,
			})
			if err != nil {
				continue
			}
			if err := sim.state.FollowPath(id, path); err != nil {
				return err
			}
			if err := sim.state.MoveToMerge(id, into, a); err != nil {
				return err
			}
			if _, err := sim.state.Merge(into, id); err != nil {
				return err
			}
			sim.trace(t, "merge", "droplet %d into %d via %v->%v (%d steps)",
				id, into, s, a, router.Steps(path)+1)
			return nil
		}
	}
	return fmt.Errorf("no merge approach to %v for droplet %d", center, id)
}

// sortNearest orders cells by Manhattan distance to from, breaking
// ties by (Y, X) for determinism.
func sortNearest(cells []geom.Point, from geom.Point) {
	sort.Slice(cells, func(i, j int) bool {
		di, dj := cells[i].Manhattan(from), cells[j].Manhattan(from)
		if di != dj {
			return di < dj
		}
		if cells[i].Y != cells[j].Y {
			return cells[i].Y < cells[j].Y
		}
		return cells[i].X < cells[j].X
	})
}

// evictDroplets clears rect of droplets that do not belong to ownerOp,
// parking them on free cells outside every active module.
func (sim *simulator) evictDroplets(t int, rect geom.Rect, ownerOp int) error {
	for _, d := range sim.state.Droplets() {
		if !rect.Contains(d.Pos) {
			continue
		}
		if id, ok := sim.inModule[ownerOp]; ok && id == d.ID {
			continue
		}
		if err := sim.parkDroplet(t, d.ID, ownerOp); err != nil {
			return fmt.Errorf("evicting droplet %d from %v: %v", d.ID, rect, err)
		}
	}
	return nil
}

// parkDroplet moves the droplet to the nearest cell outside every
// active module. On its way out it may cross starterOp's module and
// any module region it currently sits inside (physically it is just
// leaving); all other active modules stay off limits.
func (sim *simulator) parkDroplet(t, id, starterOp int) error {
	d, ok := sim.state.Droplet(id)
	if !ok {
		return fmt.Errorf("unknown droplet %d", id)
	}
	var crossKeepOut []geom.Rect
	for _, r := range sim.activeRects(t, starterOp) {
		if !r.Contains(d.Pos) {
			crossKeepOut = append(crossKeepOut, r)
		}
	}
	crossable := router.Request{
		From:          d.Pos,
		KeepOut:       crossKeepOut,
		AvoidDroplets: sim.otherDroplets(id),
	}
	allRects := sim.activeRects(t)
	for _, cell := range router.Reachable(sim.chip, crossable) {
		inModule := false
		for _, r := range allRects {
			if r.Contains(cell) {
				inModule = true
				break
			}
		}
		if inModule || !sim.state.SeparationOK(cell, id) {
			continue
		}
		if err := sim.routeViaRequest(id, cell, crossable); err == nil {
			sim.trace(t, "park", "droplet %d parked at %v", id, cell)
			return nil
		}
	}
	return fmt.Errorf("no parking cell reachable from %v", d.Pos)
}

func (sim *simulator) routeViaRequest(id int, to geom.Point, req router.Request) error {
	d, ok := sim.state.Droplet(id)
	if !ok {
		return fmt.Errorf("droplet %d not on array", id)
	}
	req.From = d.Pos
	req.To = to
	path, err := router.Route(sim.chip, req)
	if err != nil {
		return err
	}
	return sim.state.FollowPath(id, path)
}

// outputOp routes the input droplet to a collection port and removes
// it from the array.
func (sim *simulator) outputOp(t, opID int) error {
	preds := sim.sched.Graph.Pred(opID)
	if len(preds) != 1 {
		return fmt.Errorf("output op %d needs exactly one input", opID)
	}
	id, err := sim.takeProduct(t, preds[0], opID)
	if err != nil {
		return err
	}
	sim.collectDroplet(t, id)
	return nil
}

// collect gathers all remaining droplets at the end of the assay.
func (sim *simulator) collect(t int) {
	for _, d := range sim.state.Droplets() {
		sim.collectDroplet(t, d.ID)
	}
}

// collectDroplet routes the droplet to the nearest port if possible
// and removes it, recording its fluid as a product.
func (sim *simulator) collectDroplet(t, id int) {
	d, ok := sim.state.Droplet(id)
	if !ok {
		return
	}
	// Best effort: route to the first reachable port for transport
	// accounting; removal happens regardless.
	for _, port := range sim.ports {
		path, err := router.Route(sim.chip, router.Request{
			From: d.Pos, To: port,
			KeepOut:       sim.activeRects(t),
			AvoidDroplets: sim.otherDroplets(id),
		})
		if err == nil {
			if ferr := sim.state.FollowPath(id, path); ferr != nil {
				// The droplet is removed below regardless; a refused
				// final hop only loses transport accounting.
				sim.trace(t, "collect", "droplet %d stopped short of port %v: %v", id, port, ferr)
			}
			break
		}
	}
	sim.res.ProductFluids = append(sim.res.ProductFluids, d.Fluid)
	sim.state.Remove(id)
	sim.log(t, "collect", "droplet %d (%s) collected", id, d.Fluid)
}

func chebyshev(a, b geom.Point) int {
	return max(abs(a.X-b.X), abs(a.Y-b.Y))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
