package sim

import (
	"strings"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/core"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
	"dmfb/internal/pcr"
	"dmfb/internal/place"
	"dmfb/internal/schedule"
)

// pcrSetup synthesises the PCR case study and places it with the
// annealing placer at light settings (deterministic per seed).
func pcrSetup(t *testing.T) (*schedule.Schedule, *place.Placement) {
	t.Helper()
	s := pcr.MustSchedule()
	prob := core.FromSchedule(s)
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 3, ItersPerModule: 150, WindowPatience: 5})
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

// ftSetup builds a fault-tolerant (two-stage) PCR placement.
func ftSetup(t *testing.T) (*schedule.Schedule, *place.Placement) {
	t.Helper()
	s := pcr.MustSchedule()
	prob := core.FromSchedule(s)
	res, err := core.TwoStage(prob, core.Options{Seed: 3, ItersPerModule: 150, WindowPatience: 5},
		core.FTOptions{Beta: 50})
	if err != nil {
		t.Fatal(err)
	}
	return s, res.Final
}

func TestFaultFreePCRRun(t *testing.T) {
	s, p := pcrSetup(t)
	res := Run(s, p, Options{})
	if !res.Completed {
		t.Fatalf("assay failed: %s\nevents:\n%s", res.FailReason, eventDump(res))
	}
	if res.MakespanSec != s.Makespan {
		t.Errorf("makespan %d, want %d", res.MakespanSec, s.Makespan)
	}
	if len(res.Relocations) != 0 {
		t.Errorf("fault-free run performed relocations: %v", res.Relocations)
	}
	if res.TransportSteps == 0 {
		t.Error("no droplet transport recorded")
	}
	if res.TransportMS != res.TransportSteps*10 {
		t.Error("TransportMS inconsistent")
	}
	// The final master mix must contain all eight reagents.
	if len(res.ProductFluids) != 1 {
		t.Fatalf("products = %v, want exactly the master mix", res.ProductFluids)
	}
	for _, reagent := range pcr.Reagents {
		if !strings.Contains(res.ProductFluids[0], reagent) {
			t.Errorf("master mix %q missing %s", res.ProductFluids[0], reagent)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	s, p := pcrSetup(t)
	a := Run(s, p, Options{Trace: true})
	b := Run(s, p, Options{Trace: true})
	if eventDump(a) != eventDump(b) {
		t.Error("same inputs produced different event logs")
	}
	if a.TransportSteps != b.TransportSteps {
		t.Error("transport differs between identical runs")
	}
}

func TestRunDoesNotMutateCallerPlacement(t *testing.T) {
	s, p := ftSetup(t)
	before := p.String()
	cov := fti.Compute(p)
	// Find a covered module cell so the run relocates something.
	cell, ok := coveredModuleCell(p, cov)
	if !ok {
		t.Skip("placement has no covered module cell")
	}
	res := Run(s, p, Options{}, FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)})
	if !res.Completed {
		t.Fatalf("recovery failed: %s", res.FailReason)
	}
	if len(res.Relocations) == 0 {
		t.Fatal("no relocation recorded")
	}
	if p.String() != before {
		t.Error("Run mutated the caller's placement")
	}
}

func TestFaultOnTransportRing(t *testing.T) {
	s, p := pcrSetup(t)
	// Cell (0,0) of the chip is on the border ring (outside the array).
	res := Run(s, p, Options{}, FaultInjection{TimeSec: 1, Cell: geom.Point{X: 0, Y: 0}})
	if !res.Completed {
		t.Fatalf("ring fault should only reroute, got failure: %s", res.FailReason)
	}
	if len(res.Relocations) != 0 {
		t.Error("ring fault triggered module relocation")
	}
}

func TestFaultInCoveredCellRecovers(t *testing.T) {
	s, p := ftSetup(t)
	cov := fti.Compute(p)
	cell, ok := coveredModuleCell(p, cov)
	if !ok {
		t.Skip("no covered module cell on this placement")
	}
	res := Run(s, p, Options{Trace: true},
		FaultInjection{TimeSec: 1, Cell: ArrayCell(Options{}, cell)})
	if !res.Completed {
		t.Fatalf("covered fault not recovered: %s\n%s", res.FailReason, eventDump(res))
	}
	if len(res.Relocations) == 0 {
		t.Fatal("no relocation performed")
	}
	// The relocated module must avoid the faulty cell.
	for _, rel := range res.Relocations {
		if rel.To.Contains(cell) {
			t.Errorf("relocation %v still covers the faulty cell", rel)
		}
	}
	// Products unchanged.
	if len(res.ProductFluids) != 1 || !strings.Contains(res.ProductFluids[0], "dna") {
		t.Errorf("products after recovery = %v", res.ProductFluids)
	}
}

func TestFaultInUncoveredCellFails(t *testing.T) {
	s, p := pcrSetup(t)
	cov := fti.Compute(p)
	// Find an uncovered cell (the area-minimal placement has many).
	var cell geom.Point
	found := false
	for y := 0; y < cov.Array.H && !found; y++ {
		for x := 0; x < cov.Array.W && !found; x++ {
			if !cov.CoveredAt(x, y) {
				cell = geom.Point{X: x, Y: y}
				found = true
			}
		}
	}
	if !found {
		t.Skip("area-minimal placement unexpectedly has FTI 1")
	}
	res := Run(s, p, Options{}, FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)})
	if res.Completed {
		t.Fatalf("uncovered fault at %v should abort the assay", cell)
	}
	if !strings.Contains(res.FailReason, "reconfiguration") {
		t.Errorf("FailReason = %q", res.FailReason)
	}
}

// TestFTIPredictsSurvival: for a fault injected before any module has
// completed, assay survival must match the FTI coverage map exactly
// (modulo droplet routing, which the transport ring guarantees here).
func TestFTIPredictsSurvival(t *testing.T) {
	s, p := ftSetup(t)
	cov := fti.Compute(p)
	mismatches := 0
	total := 0
	for y := 0; y < cov.Array.H; y++ {
		for x := 0; x < cov.Array.W; x++ {
			cell := geom.Point{X: x, Y: y}
			res := Run(s, p, Options{}, FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)})
			total++
			if res.Completed != cov.CoveredAt(x, y) {
				mismatches++
				t.Logf("cell %v: covered=%v completed=%v (%s)",
					cell, cov.CoveredAt(x, y), res.Completed, res.FailReason)
			}
		}
	}
	if mismatches != 0 {
		t.Errorf("%d/%d cells disagree between FTI and simulation", mismatches, total)
	}
}

func TestTwoFaultsSequential(t *testing.T) {
	s, p := ftSetup(t)
	cov := fti.Compute(p)
	cell, ok := coveredModuleCell(p, cov)
	if !ok {
		t.Skip("no covered module cell")
	}
	// Second fault on the transport ring to exercise multi-fault
	// bookkeeping without demanding double coverage.
	res := Run(s, p, Options{},
		FaultInjection{TimeSec: 0, Cell: ArrayCell(Options{}, cell)},
		FaultInjection{TimeSec: 10, Cell: geom.Point{X: 0, Y: 0}},
	)
	if !res.Completed {
		t.Fatalf("two-fault run failed: %s", res.FailReason)
	}
}

func TestMismatchedPlacementRejected(t *testing.T) {
	s, p := pcrSetup(t)
	short := place.New(p.Modules[:3])
	res := Run(s, short, Options{})
	if res.Completed {
		t.Fatal("mismatched placement accepted")
	}
	if !strings.Contains(res.FailReason, "modules") {
		t.Errorf("FailReason = %q", res.FailReason)
	}
}

// TestDilutionWorkload exercises the split path: one dilute feeding
// two detects.
func TestDilutionWorkload(t *testing.T) {
	lib := modlib.Table1()
	diluter := modlib.Device{Name: "diluter-1x4", Hardware: "4-electrode linear array",
		Kind: assay.Dilute, Size: geom.Size{W: 3, H: 6}, Duration: 5}
	g := assay.New("dilution")
	s1 := g.AddOp("Ds", assay.Dispense, "sample")
	s2 := g.AddOp("Db", assay.Dispense, "buffer")
	dil := g.AddOp("Dil", assay.Dilute, "")
	d1 := g.AddOp("Det1", assay.Detect, "")
	d2 := g.AddOp("Det2", assay.Detect, "")
	g.MustEdge(s1, dil)
	g.MustEdge(s2, dil)
	g.MustEdge(dil, d1)
	g.MustEdge(dil, d2)
	det, _ := lib.Get(modlib.DetectorLED)
	b := schedule.Binding{dil: diluter, d1: det, d2: det}
	sch, err := schedule.List(g, b, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prob := core.FromSchedule(sch)
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 1, ItersPerModule: 100, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(sch, p, Options{Trace: true})
	if !res.Completed {
		t.Fatalf("dilution assay failed: %s\n%s", res.FailReason, eventDump(res))
	}
	if len(res.ProductFluids) != 2 {
		t.Fatalf("products = %v, want two diluted droplets", res.ProductFluids)
	}
	for _, f := range res.ProductFluids {
		if !strings.Contains(f, "sample") || !strings.Contains(f, "buffer") {
			t.Errorf("product %q not a dilution", f)
		}
	}
}

// coveredModuleCell returns a C-covered cell that lies inside at least
// one module (so the injection actually triggers a relocation).
func coveredModuleCell(p *place.Placement, cov fti.Result) (geom.Point, bool) {
	for y := 0; y < cov.Array.H; y++ {
		for x := 0; x < cov.Array.W; x++ {
			cell := geom.Point{X: cov.Array.X + x, Y: cov.Array.Y + y}
			if cov.CoveredAt(x, y) && len(p.ModulesAt(cell)) > 0 {
				return cell, true
			}
		}
	}
	return geom.Point{}, false
}

func eventDump(r Result) string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
