// Package actuation compiles droplet-level plans into electrode
// activation sequences — the control program the paper describes being
// "dynamically programmed into a microcontroller that controls the
// voltages of electrodes in the array".
//
// Electrowetting control convention: to move a droplet one cell, the
// target electrode is energised while the droplet's current electrode
// is released; to hold a droplet in place its electrode stays
// energised. A frame lists the energised electrodes for one 10 ms
// control step.
package actuation

import (
	"fmt"
	"sort"
	"strings"

	"dmfb/internal/geom"
	"dmfb/internal/router"
)

// Frame is the set of energised electrodes during one control step.
type Frame struct {
	Step int
	On   []geom.Point // sorted by (Y, X)
}

// Bitmap renders the frame as a row-major boolean matrix for a w×h
// array (the shape a register-scan chain would consume).
func (f Frame) Bitmap(w, h int) []bool {
	m := make([]bool, w*h)
	for _, p := range f.On {
		if p.X >= 0 && p.X < w && p.Y >= 0 && p.Y < h {
			m[p.Y*w+p.X] = true
		}
	}
	return m
}

// String renders the frame compactly.
func (f Frame) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %d:", f.Step)
	for _, p := range f.On {
		fmt.Fprintf(&b, " %v", p)
	}
	return b.String()
}

func sortCells(cells []geom.Point) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Y != cells[j].Y {
			return cells[i].Y < cells[j].Y
		}
		return cells[i].X < cells[j].X
	})
}

// CompileTransport converts a synchronised multi-droplet routing plan
// into control frames: frame t energises, for every droplet, the
// electrode it must occupy at step t+1 (its pull target when moving,
// its own electrode when holding); a final frame holds every droplet
// at its destination. The plan's separation constraints guarantee no
// two energised electrodes of a frame are adjacent, which the compiler
// verifies.
func CompileTransport(plan *router.ConcurrentPlan) ([]Frame, error) {
	if plan == nil || len(plan.Paths) == 0 {
		return nil, nil
	}
	frames := make([]Frame, 0, plan.Makespan+1)
	for t := 0; t <= plan.Makespan; t++ {
		var on []geom.Point
		for _, path := range plan.Paths {
			next := path[min(t+1, plan.Makespan)]
			on = append(on, next)
		}
		sortCells(on)
		for i := 0; i < len(on); i++ {
			for j := i + 1; j < len(on); j++ {
				if cheb(on[i], on[j]) < 2 {
					return nil, fmt.Errorf(
						"actuation: frame %d energises adjacent electrodes %v and %v",
						t, on[i], on[j])
				}
			}
		}
		frames = append(frames, Frame{Step: t, On: on})
	}
	return frames, nil
}

// MixerPattern generates the cyclic actuation that mixes a droplet
// inside a module: the droplet is walked around the perimeter of the
// functional region ("routing two droplets to the same location and
// then turning them around some pivot points", Section 2) for the
// given number of laps. The functional region must be at least 2×2 —
// for linear (1×k) mixers the droplet oscillates end to end instead.
func MixerPattern(functional geom.Rect, laps int) ([]Frame, error) {
	if functional.Empty() || laps < 1 {
		return nil, fmt.Errorf("actuation: bad mixer pattern request %v x%d", functional, laps)
	}
	cycle := perimeter(functional)
	if len(cycle) == 1 {
		return nil, fmt.Errorf("actuation: cannot mix on a single electrode %v", functional)
	}
	var frames []Frame
	step := 0
	for lap := 0; lap < laps; lap++ {
		for _, p := range cycle {
			frames = append(frames, Frame{Step: step, On: []geom.Point{p}})
			step++
		}
	}
	return frames, nil
}

// perimeter returns the boundary cells of r in clockwise walk order
// starting at the origin corner; for 1-wide regions it returns the
// out-and-back oscillation path.
func perimeter(r geom.Rect) []geom.Point {
	if r.W == 1 || r.H == 1 {
		var line []geom.Point
		for _, p := range r.Points() {
			line = append(line, p)
		}
		// Out and back (excluding the duplicated endpoints).
		out := append([]geom.Point(nil), line...)
		for i := len(line) - 2; i >= 1; i-- {
			out = append(out, line[i])
		}
		return out
	}
	var out []geom.Point
	for x := r.X; x < r.MaxX(); x++ { // bottom, left→right
		out = append(out, geom.Point{X: x, Y: r.Y})
	}
	for y := r.Y + 1; y < r.MaxY(); y++ { // right, bottom→top
		out = append(out, geom.Point{X: r.MaxX() - 1, Y: y})
	}
	for x := r.MaxX() - 2; x >= r.X; x-- { // top, right→left
		out = append(out, geom.Point{X: x, Y: r.MaxY() - 1})
	}
	for y := r.MaxY() - 2; y >= r.Y+1; y-- { // left, top→bottom
		out = append(out, geom.Point{X: r.X, Y: y})
	}
	return out
}

// HoldPattern returns the single repeating frame that parks droplets
// at fixed cells (storage modules): their electrodes stay energised.
func HoldPattern(cells []geom.Point) Frame {
	on := append([]geom.Point(nil), cells...)
	sortCells(on)
	return Frame{Step: 0, On: on}
}

// Program is a complete electrode control program: an ordered frame
// sequence plus the array dimensions it addresses.
type Program struct {
	W, H   int
	Frames []Frame
}

// Validate checks every frame addresses only in-array electrodes and
// never energises adjacent pairs.
func (p *Program) Validate() error {
	bounds := geom.Rect{X: 0, Y: 0, W: p.W, H: p.H}
	for _, f := range p.Frames {
		for i, c := range f.On {
			if !bounds.Contains(c) {
				return fmt.Errorf("actuation: frame %d electrode %v outside %dx%d array",
					f.Step, c, p.W, p.H)
			}
			for j := i + 1; j < len(f.On); j++ {
				if cheb(c, f.On[j]) < 2 {
					return fmt.Errorf("actuation: frame %d energises adjacent electrodes %v and %v",
						f.Step, c, f.On[j])
				}
			}
		}
	}
	return nil
}

// DurationMS returns the program length in milliseconds at the 10 ms
// control period.
func (p *Program) DurationMS() int { return len(p.Frames) * 10 }

func cheb(a, b geom.Point) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}
