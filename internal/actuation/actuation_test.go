package actuation

import (
	"strings"
	"testing"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
	"dmfb/internal/router"
)

func TestCompileTransportSingleDroplet(t *testing.T) {
	chip := fluidics.NewChip(6, 3)
	plan, err := router.PlanConcurrent(chip,
		[]router.Endpoint{{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 3, Y: 0}}},
		router.ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	frames, err := CompileTransport(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != plan.Makespan+1 {
		t.Fatalf("frames = %d, want %d", len(frames), plan.Makespan+1)
	}
	// Frame t energises the droplet's position at t+1: a straight
	// eastward march energises (1,0), (2,0), (3,0), then holds (3,0).
	want := []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 0}}
	for i, w := range want {
		if len(frames[i].On) != 1 || frames[i].On[0] != w {
			t.Errorf("frame %d = %v, want %v", i, frames[i].On, w)
		}
	}
}

func TestCompileTransportMultiDroplet(t *testing.T) {
	chip := fluidics.NewChip(10, 6)
	eps := []router.Endpoint{
		{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 9, Y: 0}},
		{From: geom.Point{X: 0, Y: 4}, To: geom.Point{X: 9, Y: 4}},
	}
	plan, err := router.PlanConcurrent(chip, eps, router.ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	frames, err := CompileTransport(plan)
	if err != nil {
		t.Fatal(err)
	}
	prog := Program{W: 10, H: 6, Frames: frames}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if prog.DurationMS() != (plan.Makespan+1)*10 {
		t.Errorf("duration = %d ms", prog.DurationMS())
	}
	for _, f := range frames {
		if len(f.On) != 2 {
			t.Errorf("frame %d energises %d electrodes, want 2", f.Step, len(f.On))
		}
	}
}

func TestCompileTransportEmpty(t *testing.T) {
	frames, err := CompileTransport(nil)
	if err != nil || frames != nil {
		t.Fatal("nil plan should compile to nothing")
	}
	frames, err = CompileTransport(&router.ConcurrentPlan{})
	if err != nil || frames != nil {
		t.Fatal("empty plan should compile to nothing")
	}
}

func TestMixerPatternRectangular(t *testing.T) {
	// 2x4 functional region: perimeter = all 8 cells.
	frames, err := MixerPattern(geom.Rect{X: 1, Y: 1, W: 4, H: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 16 { // 8 cells x 2 laps
		t.Fatalf("frames = %d, want 16", len(frames))
	}
	// The walk is a closed tour: consecutive electrodes adjacent, and
	// the lap wraps around.
	for i := range frames {
		if len(frames[i].On) != 1 {
			t.Fatalf("mixer frame energises %d electrodes", len(frames[i].On))
		}
		next := frames[(i+1)%len(frames)].On[0]
		if frames[i].On[0].Manhattan(next) != 1 {
			t.Errorf("tour breaks between step %d (%v) and next (%v)",
				i, frames[i].On[0], next)
		}
	}
	// Every perimeter cell is visited each lap.
	seen := map[geom.Point]int{}
	for _, f := range frames {
		seen[f.On[0]]++
	}
	if len(seen) != 8 {
		t.Errorf("visited %d distinct cells, want 8", len(seen))
	}
	for p, n := range seen {
		if n != 2 {
			t.Errorf("cell %v visited %d times, want 2", p, n)
		}
	}
}

func TestMixerPatternLinear(t *testing.T) {
	// 1x4 linear mixer: droplet oscillates end to end.
	frames, err := MixerPattern(geom.Rect{X: 0, Y: 0, W: 4, H: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 6 { // 4 out + 2 back
		t.Fatalf("frames = %d, want 6", len(frames))
	}
	for i := 0; i+1 < len(frames); i++ {
		if frames[i].On[0].Manhattan(frames[i+1].On[0]) != 1 {
			t.Errorf("oscillation breaks at %d", i)
		}
	}
	// Wraps back to the start.
	if frames[len(frames)-1].On[0].Manhattan(frames[0].On[0]) != 1 {
		t.Error("oscillation does not close the loop")
	}
}

func TestMixerPatternErrors(t *testing.T) {
	if _, err := MixerPattern(geom.Rect{}, 1); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := MixerPattern(geom.Rect{X: 0, Y: 0, W: 2, H: 2}, 0); err == nil {
		t.Error("zero laps accepted")
	}
	if _, err := MixerPattern(geom.Rect{X: 0, Y: 0, W: 1, H: 1}, 1); err == nil {
		t.Error("single-electrode mixing accepted")
	}
}

func TestHoldPatternAndBitmap(t *testing.T) {
	f := HoldPattern([]geom.Point{{X: 3, Y: 1}, {X: 0, Y: 0}})
	if len(f.On) != 2 || f.On[0] != (geom.Point{X: 0, Y: 0}) {
		t.Errorf("HoldPattern = %v", f.On)
	}
	bm := f.Bitmap(4, 2)
	if !bm[0] || !bm[1*4+3] {
		t.Error("Bitmap bits wrong")
	}
	on := 0
	for _, b := range bm {
		if b {
			on++
		}
	}
	if on != 2 {
		t.Errorf("Bitmap has %d bits set", on)
	}
	if !strings.Contains(f.String(), "(0,0)") {
		t.Errorf("String = %q", f.String())
	}
}

func TestProgramValidateCatchesViolations(t *testing.T) {
	bad := Program{W: 4, H: 4, Frames: []Frame{
		{Step: 0, On: []geom.Point{{X: 5, Y: 0}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-array electrode accepted")
	}
	bad = Program{W: 4, H: 4, Frames: []Frame{
		{Step: 0, On: []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 1}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("adjacent electrodes accepted")
	}
}
