// Package pcr encodes the paper's case study: the mixing stage of the
// polymerase chain reaction (Section 6, Figures 5-6, Table 1).
//
// The mixing stage combines eight reagents pairwise in a binary tree
// of seven mixing operations M1..M7. Table 1 binds each operation to a
// mixer geometry from the Paik et al. catalogue; the resulting module
// set (footprint × time span) is the input to module placement.
package pcr

import (
	"fmt"

	"dmfb/internal/assay"
	"dmfb/internal/modlib"
	"dmfb/internal/schedule"
)

// Reagents of the PCR mix in dispensing order. Tris-HCl buffer, KCl,
// bovine serum albumin (gelatin), the primer, dNTPs, AmpliTaq DNA
// polymerase, MgCl2 (beads) and the DNA template itself.
var Reagents = [8]string{
	"tris-hcl", "kcl", "gelatin", "primer",
	"dntp", "amplitaq", "mgcl2", "dna",
}

// MixNames are the seven mixing operations of Figure 5 in Table 1
// order: M1..M4 combine the dispensed reagents pairwise, M5 merges the
// outputs of M1 and M2, M6 merges M3 and M4, and M7 produces the final
// PCR master mix.
var MixNames = [7]string{"M1", "M2", "M3", "M4", "M5", "M6", "M7"}

// Graph returns the sequencing graph of Figure 5 together with the IDs
// of the mix operations (index i holds the ID of MixNames[i]).
func Graph() (*assay.Graph, [7]int) {
	g := assay.New("pcr-mixing-stage")
	var disp [8]int
	for i, r := range Reagents {
		disp[i] = g.AddOp(fmt.Sprintf("D%d", i+1), assay.Dispense, r)
	}
	var mix [7]int
	for i, name := range MixNames {
		mix[i] = g.AddOp(name, assay.Mix, "")
	}
	// Level 1: pairwise reagent mixes.
	for i := 0; i < 4; i++ {
		g.MustEdge(disp[2*i], mix[i])
		g.MustEdge(disp[2*i+1], mix[i])
	}
	// Level 2.
	g.MustEdge(mix[0], mix[4]) // M1 -> M5
	g.MustEdge(mix[1], mix[4]) // M2 -> M5
	g.MustEdge(mix[2], mix[5]) // M3 -> M6
	g.MustEdge(mix[3], mix[5]) // M4 -> M6
	// Level 3: final master mix.
	g.MustEdge(mix[4], mix[6]) // M5 -> M7
	g.MustEdge(mix[5], mix[6]) // M6 -> M7
	return g, mix
}

// deviceFor maps each mix operation to its Table 1 hardware.
var deviceFor = [7]string{
	modlib.Mixer2x2, // M1: 2x2 electrode array, 4x4 cells, 10 s
	modlib.Mixer1x4, // M2: 4-electrode linear array, 3x6 cells, 5 s
	modlib.Mixer2x3, // M3: 2x3 electrode array, 4x5 cells, 6 s
	modlib.Mixer1x4, // M4: 4-electrode linear array, 3x6 cells, 5 s
	modlib.Mixer1x4, // M5: 4-electrode linear array, 3x6 cells, 5 s
	modlib.Mixer2x2, // M6: 2x2 electrode array, 4x4 cells, 10 s
	modlib.Mixer2x4, // M7: 2x4 electrode array, 4x6 cells, 3 s
}

// Binding returns the Table 1 resource binding for the graph returned
// by Graph. A catalogue lookup miss is reported as an error rather
// than a panic so callers assembling custom libraries get a
// diagnosable failure.
func Binding(mix [7]int) (schedule.Binding, error) {
	lib := modlib.Table1()
	b := make(schedule.Binding, len(mix))
	for i, id := range mix {
		d, ok := lib.Get(deviceFor[i])
		if !ok {
			return nil, fmt.Errorf("pcr: Table 1 device missing from library: %s", deviceFor[i])
		}
		b[id] = d
	}
	return b, nil
}

// DefaultAreaBudget is the concurrent-footprint cap used to regenerate
// the Figure 6 schedule. It equals the 63-cell array of the paper's
// area-minimal placement (Figure 7), so the schedule never demands
// more concurrent module area than that placement provides.
const DefaultAreaBudget = 63

// Schedule synthesises the Figure 6 schedule: Table 1 binding plus
// area-constrained list scheduling with pre-loaded reservoirs
// (dispense and output take no schedule time).
func Schedule() (*schedule.Schedule, error) {
	g, mix := Graph()
	b, err := Binding(mix)
	if err != nil {
		return nil, err
	}
	return schedule.List(g, b, schedule.Options{AreaBudget: DefaultAreaBudget})
}

// MustSchedule is Schedule but panics on error; the PCR case study is
// static and cannot fail except through programmer error.
func MustSchedule() *schedule.Schedule {
	s, err := Schedule()
	if err != nil {
		panic(err)
	}
	return s
}
