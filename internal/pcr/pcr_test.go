package pcr

import (
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/geom"
)

// TestFigure5SequencingGraph checks the structure of the paper's
// Figure 5: eight dispenses feeding a binary tree of seven mixes.
func TestFigure5SequencingGraph(t *testing.T) {
	g, mix := Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 15 {
		t.Fatalf("NumOps = %d, want 15", g.NumOps())
	}
	if g.CountKind(assay.Dispense) != 8 || g.CountKind(assay.Mix) != 7 {
		t.Fatalf("kind counts wrong: %d dispenses, %d mixes",
			g.CountKind(assay.Dispense), g.CountKind(assay.Mix))
	}
	// Tree structure: M1..M4 consume dispenses, M5={M1,M2}, M6={M3,M4},
	// M7={M5,M6} and M7 is the unique sink.
	depth, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	wantDepth := [7]int{1, 1, 1, 1, 2, 2, 3}
	for i, id := range mix {
		if depth[id] != wantDepth[i] {
			t.Errorf("depth(%s) = %d, want %d", MixNames[i], depth[id], wantDepth[i])
		}
		if got := len(g.Pred(id)); got != 2 {
			t.Errorf("%s has %d inputs, want 2", MixNames[i], got)
		}
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0] != mix[6] {
		t.Fatalf("sinks = %v, want only M7", sinks)
	}
}

// TestTable1ResourceBinding checks the binding against Table 1 of the
// paper: module footprints and mixing times for M1..M7.
func TestTable1ResourceBinding(t *testing.T) {
	g, mix := Graph()
	b, err := Binding(mix)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		hardware string
		size     geom.Size
		dur      int
	}{
		{"2x2 electrode array", geom.Size{W: 4, H: 4}, 10},     // M1
		{"4-electrode linear array", geom.Size{W: 3, H: 6}, 5}, // M2
		{"2x3 electrode array", geom.Size{W: 4, H: 5}, 6},      // M3
		{"4-electrode linear array", geom.Size{W: 3, H: 6}, 5}, // M4
		{"4-electrode linear array", geom.Size{W: 3, H: 6}, 5}, // M5
		{"2x2 electrode array", geom.Size{W: 4, H: 4}, 10},     // M6
		{"2x4 electrode array", geom.Size{W: 4, H: 6}, 3},      // M7
	}
	for i, id := range mix {
		d := b[id]
		if d.Hardware != want[i].hardware || d.Size != want[i].size || d.Duration != want[i].dur {
			t.Errorf("%s bound to %+v, want %+v", MixNames[i], d, want[i])
		}
	}
	_ = g
	// Total module area (the lower bound if nothing were reconfigured):
	// 16+18+20+18+18+16+24 = 130 cells.
	total := 0
	for _, id := range mix {
		total += b[id].Cells()
	}
	if total != 130 {
		t.Errorf("total module cells = %d, want 130", total)
	}
}

// TestFigure6Schedule checks the regenerated module-usage schedule:
// precedence-correct, within the 63-cell area budget, and with the
// expected structure (M1/M3 start immediately; M7 last).
func TestFigure6Schedule(t *testing.T) {
	s := MustSchedule()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	items := s.BoundItems()
	if len(items) != 7 {
		t.Fatalf("bound items = %d, want 7", len(items))
	}
	byName := map[string]geom.Interval{}
	for _, it := range items {
		byName[it.Op.Name] = it.Span
	}
	// Dispenses are instantaneous, so the highest-priority mixes start
	// at t=0 and the area budget defers exactly one level-1 mix.
	if byName["M1"].Start != 0 || byName["M3"].Start != 0 {
		t.Errorf("M1/M3 must start at 0: %v %v", byName["M1"], byName["M3"])
	}
	if s.PeakArea() > DefaultAreaBudget {
		t.Errorf("peak area %d exceeds budget %d", s.PeakArea(), DefaultAreaBudget)
	}
	// Durations straight from Table 1.
	wantDur := map[string]int{"M1": 10, "M2": 5, "M3": 6, "M4": 5, "M5": 5, "M6": 10, "M7": 3}
	for n, d := range wantDur {
		if byName[n].Len() != d {
			t.Errorf("%s duration %d, want %d", n, byName[n].Len(), d)
		}
	}
	// M7 is the last operation and defines the makespan.
	if byName["M7"].End != s.Makespan {
		t.Errorf("M7 ends at %d, makespan %d", byName["M7"].End, s.Makespan)
	}
	// The assay cannot beat its critical path (M3->M6->M7 = 19 s with
	// instantaneous dispense).
	if s.Makespan < 19 {
		t.Errorf("makespan %d beats the critical path", s.Makespan)
	}
	// Peak concurrent area is substantial (three level-1 mixers), which
	// is what makes the placement problem non-trivial.
	if s.PeakArea() < 50 {
		t.Errorf("peak area %d suspiciously small", s.PeakArea())
	}
}

// TestScheduleDeterminism: the case study must synthesise identically
// on every run, since all downstream experiments depend on it.
func TestScheduleDeterminism(t *testing.T) {
	a := MustSchedule()
	b := MustSchedule()
	if a.String() != b.String() {
		t.Fatalf("schedule not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestReagentCount(t *testing.T) {
	if len(Reagents) != 8 {
		t.Fatal("PCR mixing stage needs 8 reagents")
	}
	seen := map[string]bool{}
	for _, r := range Reagents {
		if seen[r] {
			t.Fatalf("duplicate reagent %q", r)
		}
		seen[r] = true
	}
}
