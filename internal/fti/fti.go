// Package fti computes the paper's fault tolerance index (Section 5.2)
// and the underlying per-cell C-coverage, using the fast
// maximal-empty-rectangle procedure of Section 5.3.
//
// For a configuration C on an m×n array, a cell is C-covered if
//
//   - no module uses it, or
//   - every module that uses it can be relocated by partial
//     reconfiguration: after temporarily removing the module and
//     marking the faulty cell occupied, some set of contiguous free
//     cells (equivalently, some maximal empty rectangle) accommodates
//     the module's footprint in either orientation.
//
// FTI = (#C-covered cells) / (m·n) ∈ [0, 1]. FTI = 1 means any single
// faulty cell can be bypassed by partial reconfiguration; FTI = 0
// means no faulty cell can.
//
// The combined placement of the paper's "modified 2-D placement" lets
// a cell belong to several modules with pairwise-disjoint time spans;
// such a cell is covered only if every one of those modules is
// relocatable within its own time slice (obstacles are the modules
// whose spans overlap the failing module's span).
package fti

import (
	"fmt"

	"dmfb/internal/emptyrect"
	"dmfb/internal/geom"
	"dmfb/internal/grid"
	"dmfb/internal/place"
)

// Result reports the fault-tolerance analysis of a placement.
type Result struct {
	Array   geom.Rect // the array the index is computed over
	Covered int       // number of C-covered cells
	Total   int       // m·n
	// CoveredMap[y*Array.W+x] reports whether the array cell at
	// array-local coordinates (x, y) is C-covered.
	CoveredMap []bool
	// ModuleRelocatable[i] reports whether module i can be relocated
	// for at least one faulty cell within it; a module that is not
	// relocatable for any of its cells makes all its cells uncovered.
	ModuleRelocatable []bool
}

// FTI returns the fault tolerance index k/(m·n).
func (r Result) FTI() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Total)
}

// CoveredAt reports whether the array cell at array-local (x, y) is
// C-covered.
func (r Result) CoveredAt(x, y int) bool {
	if x < 0 || x >= r.Array.W || y < 0 || y >= r.Array.H {
		return false
	}
	return r.CoveredMap[y*r.Array.W+x]
}

// String summarises the result.
func (r Result) String() string {
	return fmt.Sprintf("FTI %.4f (%d/%d cells C-covered on %dx%d array)",
		r.FTI(), r.Covered, r.Total, r.Array.W, r.Array.H)
}

// Compute analyses the placement on the smallest array containing it
// (its bounding box), the array a designer would fabricate for it.
func Compute(p *place.Placement) Result {
	return ComputeOn(p, p.BoundingBox())
}

// ComputeOn analyses the placement on an explicit array. Modules are
// clipped to the array; cells outside the array do not exist.
//
// The procedure follows Section 5.3: for each module M, the
// configuration during M's operation is encoded as a 0/1 matrix with M
// temporarily removed, the maximal empty rectangles of that matrix are
// enumerated once, and every cell of M is then tested arithmetically —
// the relocation site must accommodate M's footprint while avoiding
// the faulty cell (which the paper models by marking it as a 1).
func ComputeOn(p *place.Placement, array geom.Rect) Result {
	res := Result{
		Array:             array,
		Total:             array.Cells(),
		CoveredMap:        make([]bool, array.Cells()),
		ModuleRelocatable: make([]bool, len(p.Modules)),
	}
	// Start from "every cell covered" and knock out the cells of
	// non-relocatable modules.
	for i := range res.CoveredMap {
		res.CoveredMap[i] = true
	}

	var scratch *moduleEval
	var uncov []int32
	for mi := range p.Modules {
		if scratch == nil {
			scratch = newModuleEval(array)
		}
		var relocatable bool
		uncov, relocatable = scratch.eval(p, mi, uncov[:0])
		for _, c := range uncov {
			res.CoveredMap[c] = false
		}
		res.ModuleRelocatable[mi] = relocatable
	}

	for _, c := range res.CoveredMap {
		if c {
			res.Covered++
		}
	}
	return res
}

// moduleEval holds the reusable scratch buffers of the per-module
// relocatability test: the occupancy grid of the array and the MER
// list mined from it. One instance serves any number of evaluations on
// the same array size.
type moduleEval struct {
	array geom.Rect
	g     *grid.Grid
	miner emptyrect.Miner
	mers  []geom.Rect
}

func newModuleEval(array geom.Rect) *moduleEval {
	return &moduleEval{array: array, g: grid.New(array.W, array.H)}
}

// eval runs the Section 5.3 per-module procedure for module mi: encode
// the configuration during mi's time span with mi removed, mine the
// maximal empty rectangles once, and test each of mi's cells
// arithmetically. It appends the array-local indices of mi's cells
// that defeat relocation to dst and reports whether any cell of mi is
// relocatable.
func (e *moduleEval) eval(p *place.Placement, mi int, dst []int32) ([]int32, bool) {
	return e.evalWith(p, mi, dst, &e.miner)
}

// evalWith is eval with an explicit miner, so callers that evaluate
// many modules repeatedly (the incremental FTI kernel) can keep one
// miner per module: the miner's grid snapshot then diffs against the
// same module's previous configuration and re-mines only the rows the
// last move dirtied.
func (e *moduleEval) evalWith(p *place.Placement, mi int, dst []int32, mn *emptyrect.Miner) ([]int32, bool) {
	m := p.Modules[mi]
	// Occupancy during M's time span with M removed. Any module whose
	// span overlaps M's is an obstacle somewhere during M's operation.
	p.FillOccupancyDuring(e.g, e.array, m.Span, mi)
	e.mers = mn.AppendMaximal(e.mers[:0], e.g)
	cells := p.Rect(mi).Intersect(e.array)
	anyRelocatable := false
	for y := cells.Y; y < cells.MaxY(); y++ {
		for x := cells.X; x < cells.MaxX(); x++ {
			local := geom.Point{X: x - e.array.X, Y: y - e.array.Y}
			if emptyrect.AccommodatesAvoiding(e.mers, m.Size, local) {
				anyRelocatable = true
				continue
			}
			dst = append(dst, int32(local.Y*e.array.W+local.X))
		}
	}
	return dst, anyRelocatable
}

// ComputeBrute is an exhaustive oracle for the test suite: for every
// cell and every module containing it, it tries every position and
// orientation of the module on the array, checking cell-by-cell that
// the candidate site is free and avoids the faulty cell. O(m²n²·|M|)
// — small arrays only.
func ComputeBrute(p *place.Placement, array geom.Rect) Result {
	res := Result{
		Array:             array,
		Total:             array.Cells(),
		CoveredMap:        make([]bool, array.Cells()),
		ModuleRelocatable: make([]bool, len(p.Modules)),
	}
	for y := 0; y < array.H; y++ {
		for x := 0; x < array.W; x++ {
			pt := geom.Point{X: array.X + x, Y: array.Y + y}
			covered := true
			for _, mi := range p.ModulesAt(pt) {
				if !relocatableBrute(p, array, mi, pt) {
					covered = false
					break
				}
			}
			res.CoveredMap[y*array.W+x] = covered
			if covered {
				res.Covered++
			}
		}
	}
	for mi := range p.Modules {
		for _, pt := range p.Rect(mi).Intersect(array).Points() {
			if relocatableBrute(p, array, mi, pt) {
				res.ModuleRelocatable[mi] = true
				break
			}
		}
	}
	return res
}

// relocatableBrute reports whether module mi can be relocated when
// cell faulty (core coordinates) fails, by exhaustive position search.
func relocatableBrute(p *place.Placement, array geom.Rect, mi int, faulty geom.Point) bool {
	m := p.Modules[mi]
	g := p.OccupancyDuring(array, m.Span, mi)
	g.Set(geom.Point{X: faulty.X - array.X, Y: faulty.Y - array.Y}, true)
	sizes := []geom.Size{m.Size}
	if !m.Size.IsSquare() {
		sizes = append(sizes, m.Size.Transpose())
	}
	for _, s := range sizes {
		for y := 0; y+s.H <= array.H; y++ {
			for x := 0; x+s.W <= array.W; x++ {
				if g.RectFree(geom.Rect{X: x, Y: y, W: s.W, H: s.H}) {
					return true
				}
			}
		}
	}
	return false
}
