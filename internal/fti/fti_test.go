package fti

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/place"
)

// mod is a helper for building placement problems.
func mod(id int, name string, w, h, s, e int) place.Module {
	return place.Module{ID: id, Name: name, Size: geom.Size{W: w, H: h},
		Span: geom.Interval{Start: s, End: e}}
}

func TestFullArraySingleModuleNoSpace(t *testing.T) {
	// One 3x3 module on a 3x3 array: nowhere to relocate. FTI = 0.
	p := place.New([]place.Module{mod(0, "A", 3, 3, 0, 10)})
	r := Compute(p)
	if r.FTI() != 0 || r.Covered != 0 || r.Total != 9 {
		t.Fatalf("got %v", r)
	}
	if r.ModuleRelocatable[0] {
		t.Error("module reported relocatable with no free space")
	}
}

func TestModuleWithAmpleSpareSpace(t *testing.T) {
	// One 2x2 module on a 6x6 array: relocation always possible; every
	// cell (used and unused) is covered. FTI = 1.
	p := place.New([]place.Module{mod(0, "A", 2, 2, 0, 10)})
	r := ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 6, H: 6})
	if r.FTI() != 1 || r.Covered != 36 {
		t.Fatalf("got %v", r)
	}
	if !r.ModuleRelocatable[0] {
		t.Error("relocatable flag wrong")
	}
}

func TestUnusedCellsAlwaysCovered(t *testing.T) {
	// A 3x3 module at the corner of a 5x3 array. Removing the module
	// frees the whole array, so relocation sites have origins x ∈
	// {0,1,2}, each spanning all three rows. A fault at x=0 or x=1 can
	// be dodged (origin 1 or 2), but every site covers column x=2, so
	// exactly the module's x=2 column is uncovered. The two free
	// columns are covered by definition.
	p := place.New([]place.Module{mod(0, "A", 3, 3, 0, 10)})
	r := ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 5, H: 3})
	if r.Covered != 12 {
		t.Fatalf("covered = %d, want 12: %v", r.Covered, r)
	}
	if got := r.FTI(); math.Abs(got-12.0/15.0) > 1e-12 {
		t.Errorf("FTI = %v", got)
	}
	for x := 0; x < 5; x++ {
		for y := 0; y < 3; y++ {
			want := x != 2
			if r.CoveredAt(x, y) != want {
				t.Errorf("CoveredAt(%d,%d) = %v, want %v", x, y, r.CoveredAt(x, y), want)
			}
		}
	}
}

func TestRelocationUsesRotation(t *testing.T) {
	// A 2x3 module with a 3x2 free pocket: relocation must succeed via
	// the rotated orientation.
	mods := []place.Module{
		mod(0, "A", 2, 3, 0, 10), // placed at (0,0)
		mod(1, "B", 5, 2, 0, 10), // blocks the top strip partially
	}
	p := place.New(mods)
	p.Pos[0] = geom.Point{X: 0, Y: 0}
	p.Pos[1] = geom.Point{X: 0, Y: 3}
	// Array 5x5: row y=3..4 x0..4 is B; A is x0..1,y0..2.
	// Free: x2..4 y0..2 (3x3) — A (2x3) fits there directly and rotated.
	r := ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 5, H: 5})
	if !r.ModuleRelocatable[0] {
		t.Fatal("A not relocatable")
	}
	for _, pt := range p.Rect(0).Points() {
		if !r.CoveredAt(pt.X, pt.Y) {
			t.Errorf("cell %v of A not covered", pt)
		}
	}
}

func TestTimeSharedCellNeedsAllModulesRelocatable(t *testing.T) {
	// Two modules, disjoint time spans, sharing the same cells on a
	// tight array. A: 2x2 [0,5), B: 2x2 [5,10), both at origin of a
	// 4x2 array. Free strip 2x2 at x=2 exists in both configurations,
	// so both can relocate — all cells covered.
	mods := []place.Module{mod(0, "A", 2, 2, 0, 5), mod(1, "B", 2, 2, 5, 10)}
	p := place.New(mods)
	r := ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 4, H: 2})
	if r.FTI() != 1 {
		t.Fatalf("FTI = %v, want 1: %v", r.FTI(), r)
	}
	// Now make B 2x3 (cannot fit anywhere else on a 4x2 array even
	// rotated: rotated 3x2 needs width 3, free strip is 2 wide): the
	// shared cells become uncovered even though A alone relocates.
	mods[1] = mod(1, "B", 2, 3, 5, 10)
	p2 := place.New(mods)
	r2 := ComputeOn(p2, geom.Rect{X: 0, Y: 0, W: 4, H: 3})
	// B occupies (0..1, 0..2). A occupies (0..1, 0..1) — those cells
	// take B's coverage status. B's footprint 2x3 on 4x3 array with B
	// removed: free region x2..3 (2 wide) all rows → 2x3 fits! So B is
	// relocatable after all. Check consistency with brute force rather
	// than hand-derived expectations.
	rb := ComputeBrute(p2, geom.Rect{X: 0, Y: 0, W: 4, H: 3})
	if r2.Covered != rb.Covered {
		t.Fatalf("fast %d vs brute %d covered", r2.Covered, rb.Covered)
	}
}

func TestFaultyCellBlocksExactRefit(t *testing.T) {
	// Module 2x2 at (0,0) on a 2x4 array. With the module removed the
	// whole array is free, but any placement must avoid the faulty
	// cell. Free area is 2x4; sites are (0,0),(0,1),(0,2) vertically.
	// A fault at (0,0) leaves sites (0,1),(0,2)... but wait: sites
	// containing (0,0) are only (0,0). So relocation succeeds.
	p := place.New([]place.Module{mod(0, "A", 2, 2, 0, 10)})
	r := ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 2, H: 4})
	if r.FTI() != 1 {
		t.Fatalf("FTI = %v, want 1", r.FTI())
	}
	// Shrink to 2x3: sites are (0,0) and (0,1). A fault at (0,1) is
	// inside both sites? (0,0)-site covers rows 0-1, (0,1)-site rows
	// 1-2: both contain row 1. So cell (0,1) (and (1,1)) are NOT
	// covered; corner cells are.
	r = ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 2, H: 3})
	rb := ComputeBrute(p, geom.Rect{X: 0, Y: 0, W: 2, H: 3})
	if r.Covered != rb.Covered {
		t.Fatalf("fast %d vs brute %d", r.Covered, rb.Covered)
	}
	if r.CoveredAt(0, 1) || r.CoveredAt(1, 1) {
		t.Error("middle-row cells should be uncovered (every refit reuses them)")
	}
	if !r.CoveredAt(0, 0) || !r.CoveredAt(1, 2) {
		t.Error("corner cells should be covered")
	}
}

func TestResultStringAndBounds(t *testing.T) {
	p := place.New([]place.Module{mod(0, "A", 2, 2, 0, 10)})
	r := ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 4, H: 4})
	s := r.String()
	if !strings.Contains(s, "FTI") || !strings.Contains(s, "4x4") {
		t.Errorf("String = %q", s)
	}
	if r.CoveredAt(-1, 0) || r.CoveredAt(0, -1) || r.CoveredAt(4, 0) || r.CoveredAt(0, 4) {
		t.Error("out-of-bounds CoveredAt should be false")
	}
	if Compute(place.New([]place.Module{mod(0, "A", 2, 2, 0, 1)})).Total != 4 {
		t.Error("Compute should use the bounding box")
	}
}

func TestEmptyPlacementOnArray(t *testing.T) {
	p := place.New(nil)
	r := ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 3, H: 3})
	if r.FTI() != 1 || r.Covered != 9 {
		t.Fatalf("empty placement: %v", r)
	}
}

// Property: the fast MER-based computation agrees exactly with the
// brute-force relocation search on random placements.
func TestFastMatchesBruteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(4)
		mods := make([]place.Module, n)
		for i := range mods {
			st := rng.Intn(8)
			mods[i] = mod(i, "M", 1+rng.Intn(3), 1+rng.Intn(3), st, st+1+rng.Intn(8))
		}
		p := place.New(mods)
		aw, ah := 4+rng.Intn(5), 4+rng.Intn(5)
		for i := range mods {
			p.Pos[i] = geom.Point{X: rng.Intn(aw), Y: rng.Intn(ah)}
			p.Rot[i] = rng.Intn(2) == 0
		}
		if !p.Valid() {
			continue // only feasible configurations are meaningful
		}
		array := geom.Rect{X: 0, Y: 0, W: aw, H: ah}
		fast := ComputeOn(p, array)
		brute := ComputeBrute(p, array)
		if fast.Covered != brute.Covered {
			t.Fatalf("trial %d: covered %d vs %d\nplacement:\n%s",
				trial, fast.Covered, brute.Covered, p)
		}
		for i := range fast.CoveredMap {
			if fast.CoveredMap[i] != brute.CoveredMap[i] {
				t.Fatalf("trial %d: cell %d coverage differs", trial, i)
			}
		}
		for i := range fast.ModuleRelocatable {
			if fast.ModuleRelocatable[i] != brute.ModuleRelocatable[i] {
				t.Fatalf("trial %d: module %d relocatable differs", trial, i)
			}
		}
	}
}

// Property: growing the array never decreases the count of covered
// cells among the original cells... (not true in general for FTI as a
// ratio, but the absolute relocation ability is monotone: any module
// relocatable on a subarray stays relocatable on a superarray).
func TestRelocatableMonotoneInArraySize(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(3)
		mods := make([]place.Module, n)
		for i := range mods {
			st := rng.Intn(5)
			mods[i] = mod(i, "M", 1+rng.Intn(3), 1+rng.Intn(3), st, st+1+rng.Intn(6))
		}
		p := place.New(mods)
		for i := range mods {
			p.Pos[i] = geom.Point{X: rng.Intn(4), Y: rng.Intn(4)}
		}
		if !p.Valid() {
			continue
		}
		small := geom.Rect{X: 0, Y: 0, W: 7, H: 7}
		big := geom.Rect{X: 0, Y: 0, W: 9, H: 9}
		rs := ComputeOn(p, small)
		rb := ComputeOn(p, big)
		for i := range rs.ModuleRelocatable {
			if rs.ModuleRelocatable[i] && !rb.ModuleRelocatable[i] {
				t.Fatalf("module %d lost relocatability on bigger array", i)
			}
		}
		// Per-cell coverage is monotone too for cells in the small array.
		for y := 0; y < small.H; y++ {
			for x := 0; x < small.W; x++ {
				if rs.CoveredAt(x, y) && !rb.CoveredAt(x, y) {
					t.Fatalf("cell (%d,%d) lost coverage on bigger array", x, y)
				}
			}
		}
	}
}
