package fti

import (
	"math/rand"
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/place"
)

func randomPlacement(rng *rand.Rand, n int) *place.Placement {
	mods := make([]place.Module, n)
	for i := range mods {
		start := rng.Intn(15)
		mods[i] = place.Module{
			ID:   i,
			Name: "M",
			Size: geom.Size{W: 1 + rng.Intn(4), H: 1 + rng.Intn(4)},
			Span: geom.Interval{Start: start, End: start + 1 + rng.Intn(8)},
		}
	}
	p := place.New(mods)
	for i := range mods {
		p.Pos[i] = geom.Point{X: rng.Intn(8), Y: rng.Intn(8)}
	}
	return p
}

// checkAgainstScratch asserts the incremental evaluator's covered
// count, array, and per-cell knockouts exactly match ComputeOn.
func checkAgainstScratch(t *testing.T, tag string, inc *Incremental, p *place.Placement) {
	t.Helper()
	array := p.BoundingBox()
	res := ComputeOn(p, array)
	if inc.Array() != array {
		t.Fatalf("%s: array = %v, scratch %v", tag, inc.Array(), array)
	}
	if inc.Covered() != res.Covered {
		t.Fatalf("%s: covered = %d, scratch %d", tag, inc.Covered(), res.Covered)
	}
	if inc.Total() != res.Total {
		t.Fatalf("%s: total = %d, scratch %d", tag, inc.Total(), res.Total)
	}
	for c, cov := range res.CoveredMap {
		if (inc.knock[c] == 0) != cov {
			t.Fatalf("%s: cell %d covered=%v, scratch %v", tag, c, inc.knock[c] == 0, cov)
		}
	}
	for mi, r := range res.ModuleRelocatable {
		if inc.reloc[mi] != r {
			t.Fatalf("%s: module %d relocatable=%v, scratch %v", tag, mi, inc.reloc[mi], r)
		}
	}
	if inc.FTI() != res.FTI() {
		t.Fatalf("%s: FTI = %v, scratch %v", tag, inc.FTI(), res.FTI())
	}
}

// TestIncrementalDifferential runs long random move sequences with
// randomised commit/revert decisions and asserts exact agreement with
// ComputeOn after every committed or reverted move.
func TestIncrementalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const rounds = 12
	const movesPerRound = 900 // 12 × 900 = 10800 checked moves

	for round := 0; round < rounds; round++ {
		p := randomPlacement(rng, 3+rng.Intn(7))
		inc := NewIncremental(p)
		checkAgainstScratch(t, "initial", inc, p)

		for mv := 0; mv < movesPerRound; mv++ {
			i := rng.Intn(len(p.Modules))
			oldPos, oldRot := p.Pos[i], p.Rot[i]
			p.Pos[i] = geom.Point{X: rng.Intn(10), Y: rng.Intn(10)}
			p.Rot[i] = rng.Intn(2) == 0

			inc.Apply(p.BoundingBox(), inc.AffectedBy(i))
			if rng.Intn(2) == 0 {
				inc.Commit()
				checkAgainstScratch(t, "commit", inc, p)
			} else {
				p.Pos[i], p.Rot[i] = oldPos, oldRot
				inc.Revert()
				checkAgainstScratch(t, "revert", inc, p)
			}
		}
	}
}

// TestIncrementalPairMoves exercises two-module moves (the pair
// interchange family) through the dirty-set union.
func TestIncrementalPairMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomPlacement(rng, 6)
	inc := NewIncremental(p)

	for mv := 0; mv < 1500; mv++ {
		i := rng.Intn(len(p.Modules))
		j := rng.Intn(len(p.Modules) - 1)
		if j >= i {
			j++
		}
		oi, oj := p.Pos[i], p.Pos[j]
		p.Pos[i], p.Pos[j] = oj, oi

		inc.Apply(p.BoundingBox(), inc.AffectedBy(i, j))
		if rng.Intn(3) == 0 {
			p.Pos[i], p.Pos[j] = oi, oj
			inc.Revert()
			checkAgainstScratch(t, "revert", inc, p)
		} else {
			inc.Commit()
			checkAgainstScratch(t, "commit", inc, p)
		}
	}
}

// TestIncrementalCacheHits checks the cache accounting: a move that
// keeps the bounding box fixed re-evaluates only the dirty set.
func TestIncrementalCacheHits(t *testing.T) {
	// Two spatially distant, time-disjoint module groups pinned by a
	// corner module so the bounding box never moves.
	mods := []place.Module{
		{ID: 0, Name: "A", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 5}},
		{ID: 1, Name: "B", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 5}},
		{ID: 2, Name: "C", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 10, End: 15}},
		{ID: 3, Name: "D", Size: geom.Size{W: 1, H: 1}, Span: geom.Interval{Start: 20, End: 25}},
	}
	p := place.New(mods)
	p.Pos[0] = geom.Point{X: 0, Y: 0}
	p.Pos[1] = geom.Point{X: 4, Y: 0}
	p.Pos[2] = geom.Point{X: 0, Y: 4}
	p.Pos[3] = geom.Point{X: 9, Y: 9} // pins the 10×10 bounding box

	inc := NewIncremental(p)
	evals0, _ := inc.Stats()
	if evals0 != int64(len(mods)) {
		t.Fatalf("initial evals = %d, want %d", evals0, len(mods))
	}

	// Move C (no span conflicts): dirty set is {C} alone.
	p.Pos[2] = geom.Point{X: 5, Y: 5}
	inc.Apply(p.BoundingBox(), inc.AffectedBy(2))
	inc.Commit()
	checkAgainstScratch(t, "moveC", inc, p)
	evals1, hits1 := inc.Stats()
	if evals1-evals0 != 1 {
		t.Errorf("moving a conflict-free module cost %d evals, want 1", evals1-evals0)
	}
	if hits1 != int64(len(mods)-1) {
		t.Errorf("cache hits = %d, want %d", hits1, len(mods)-1)
	}

	// Move A (conflicts with B): dirty set is {A, B}. A keeps x=0 so
	// the bounding box stays pinned and no full rebuild triggers.
	p.Pos[0] = geom.Point{X: 0, Y: 1}
	inc.Apply(p.BoundingBox(), inc.AffectedBy(0))
	inc.Commit()
	checkAgainstScratch(t, "moveA", inc, p)
	evals2, _ := inc.Stats()
	if evals2-evals1 != 2 {
		t.Errorf("moving a 1-degree module cost %d evals, want 2", evals2-evals1)
	}
}

// TestIncrementalArrayChangeRevert exercises the full-rebuild path and
// its buffer-swap revert.
func TestIncrementalArrayChangeRevert(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomPlacement(rng, 5)
	inc := NewIncremental(p)

	for mv := 0; mv < 800; mv++ {
		i := rng.Intn(len(p.Modules))
		oldPos := p.Pos[i]
		// Large jumps force frequent bounding-box changes.
		p.Pos[i] = geom.Point{X: rng.Intn(20), Y: rng.Intn(20)}
		inc.Apply(p.BoundingBox(), inc.AffectedBy(i))
		if rng.Intn(2) == 0 {
			p.Pos[i] = oldPos
			inc.Revert()
			checkAgainstScratch(t, "revert", inc, p)
		} else {
			inc.Commit()
			checkAgainstScratch(t, "commit", inc, p)
		}
	}
}

func TestIncrementalApplyTwicePanics(t *testing.T) {
	p := randomPlacement(rand.New(rand.NewSource(3)), 3)
	inc := NewIncremental(p)
	inc.Apply(p.BoundingBox(), nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("second Apply without Commit/Revert did not panic")
		}
	}()
	inc.Apply(p.BoundingBox(), nil)
}
