package fti

import (
	"fmt"

	"dmfb/internal/emptyrect"
	"dmfb/internal/geom"
	"dmfb/internal/place"
)

// Incremental maintains the fault tolerance index of a placement
// across single- and pair-move perturbations, so the stage-2 annealer
// prices a move by re-evaluating only the moved modules and the
// modules whose time spans conflict with them, instead of all Nm.
//
// The cache is keyed per module: module j's relocatability analysis
// depends only on the array, j's own rectangle, and the rectangles of
// the modules active during j's span (its span-overlap neighbours).
// Moving module i therefore invalidates exactly {i} ∪ adj(i); every
// other module's knocked-out cell set is reused verbatim. When the
// array (the placement's bounding box) changes, every module's
// analysis is over a different matrix and the whole cache is rebuilt.
//
// Coverage is aggregated through per-cell knockout counters: knock[c]
// counts the modules whose analysis marks array cell c uncovered, and
// Covered is the number of cells with a zero count — identical, cell
// for cell, to ComputeOn's CoveredMap (the differential tests assert
// exact equality over long random move sequences).
//
// The speculation protocol mirrors the annealing kernel: mutate the
// placement, call Apply with the new array and the dirty module set,
// then either Commit (keep) or Revert (restore the placement first,
// then call Revert — the previous analysis is reinstated from the
// saved entries without re-evaluating anything).
//
// On top of the dirty-set reuse sits a per-module memo table: module
// j's analysis is a pure function of (array, j's rectangle, the
// rectangles of j's span-overlap neighbours), so its result is cached
// under that exact key and never needs invalidation. Low-temperature
// annealing revisits the same few configurations over and over —
// rejected proposals displace a module by a cell and bounce back — so
// after warm-up most dirty-set re-evaluations and most full rebuilds
// (bounding-box changes) are pure lookups.
type Incremental struct {
	p   *place.Placement
	adj [][]int // span-overlap adjacency, index-aligned with modules

	array     geom.Rect
	knock     []int32   // per-cell knockout counters, array-local
	uncovered [][]int32 // per-module knocked-out cell indices
	reloc     []bool    // per-module relocatability
	covered   int

	// Staged speculation (one level deep).
	staged     bool
	fullSwap   bool // array changed: whole state saved aside
	savedArray geom.Rect
	savedCover int
	savedKnock []int32
	savedUncov [][]int32
	savedReloc []bool
	dirty      []int // modules re-evaluated by the staged Apply

	// Spare buffers recycled across full rebuilds.
	spareKnock []int32
	spareUncov [][]int32
	spareReloc []bool

	// Per-module memo of the pure analysis function. Values are
	// immutable once stored; uncovered[mi] and savedUncov alias them.
	memo   []*memoTable
	memoOK []bool // adjacency degree fits the key; coordinates checked per key
	keyBuf [maxKeyWords]uint64

	scratch *moduleEval
	// miners[mi] is module mi's empty-rectangle miner. Each keeps a
	// snapshot of the grid it last mined — module mi's occupancy matrix
	// — so a memo-missing re-evaluation re-mines only the rows the move
	// actually dirtied instead of the whole array.
	miners []emptyrect.Miner

	evals int64 // per-module evaluations performed
	hits  int64 // per-module evaluations avoided by the caches
}

// A memo key captures every input of one module's relocatability
// analysis as a short run of uint64 words: word 0 packs the array
// rectangle, word 1 the module's own configuration, and one further
// word per span-overlap neighbour (footprints and spans are
// immutable, so positions and orientations are the whole story). The
// run length is fixed per module at 2+degree, bounded by maxKeyWords.
type memoVal struct {
	uncovered []int32
	reloc     bool
}

// maxKeyWords bounds the memo key length: one array word, one own
// configuration, up to 12 neighbours.
const maxKeyWords = 14

// memoCapPerModule bounds each module's memo; when exceeded the table
// is dropped and rebuilt (exactness is unaffected — it is a cache of a
// pure function).
const memoCapPerModule = 4096

// memoTable is an open-addressed, linear-probing hash table
// specialised for the memo: keys are compared word-for-word in place
// and hashed with a two-round multiply-xor mix, which profiles far
// cheaper on the annealer's hot path than the runtime map's generic
// treatment of a large fixed-size struct key (no 112-byte copies, no
// AES hashing of padding slots past the module's actual degree).
// Entries are never deleted, so probe chains have no tombstones.
type memoTable struct {
	keyWords int      // words per key: 2 + adjacency degree
	mask     uint64   // len(hashes)-1; size is a power of two
	n        int      // live entries
	hashes   []uint64 // 0 marks an empty slot (hashKey never returns 0)
	keys     []uint64 // slot i holds keys[i*keyWords : (i+1)*keyWords]
	vals     []memoVal
}

func newMemoTable(keyWords int) *memoTable {
	const initSlots = 32
	return &memoTable{
		keyWords: keyWords,
		mask:     initSlots - 1,
		hashes:   make([]uint64, initSlots),
		keys:     make([]uint64, initSlots*keyWords),
		vals:     make([]memoVal, initSlots),
	}
}

// hashKey mixes the key words splitmix64-style; the result is never 0
// so 0 can mark empty slots.
func hashKey(key []uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range key {
		h ^= w
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 29
	}
	if h == 0 {
		h = 1
	}
	return h
}

func equalKey(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (t *memoTable) lookup(key []uint64, h uint64) (memoVal, bool) {
	i := h & t.mask
	for {
		hv := t.hashes[i]
		if hv == 0 {
			return memoVal{}, false
		}
		if hv == h && equalKey(t.keys[int(i)*t.keyWords:(int(i)+1)*t.keyWords], key) {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// insert adds a key known to be absent, growing at 3/4 load.
func (t *memoTable) insert(key []uint64, h uint64, v memoVal) {
	if 4*(t.n+1) > 3*len(t.hashes) {
		t.grow()
	}
	i := h & t.mask
	for t.hashes[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.hashes[i] = h
	copy(t.keys[int(i)*t.keyWords:(int(i)+1)*t.keyWords], key)
	t.vals[i] = v
	t.n++
}

// grow doubles the table, re-slotting entries by their stored hashes.
func (t *memoTable) grow() {
	oldHashes, oldKeys, oldVals := t.hashes, t.keys, t.vals
	slots := 2 * len(oldHashes)
	t.mask = uint64(slots - 1)
	t.hashes = make([]uint64, slots)
	t.keys = make([]uint64, slots*t.keyWords)
	t.vals = make([]memoVal, slots)
	for j, h := range oldHashes {
		if h == 0 {
			continue
		}
		i := h & t.mask
		for t.hashes[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.hashes[i] = h
		copy(t.keys[int(i)*t.keyWords:(int(i)+1)*t.keyWords], oldKeys[j*t.keyWords:(j+1)*t.keyWords])
		t.vals[i] = oldVals[j]
	}
}

// reset drops every entry, keeping the allocated capacity.
func (t *memoTable) reset() {
	clear(t.hashes)
	clear(t.vals) // release the []int32 values to the GC
	t.n = 0
}

// packCfg encodes module i's position and orientation. Bit 63 marks
// the slot as used so an empty slot can never collide with a real
// configuration; 31 bits per coordinate cover every realistic array.
func packCfg(p *place.Placement, i int) (uint64, bool) {
	x, y := p.Pos[i].X, p.Pos[i].Y
	if x < 0 || y < 0 || x >= 1<<31 || y >= 1<<31 {
		return 0, false
	}
	rot := uint64(0)
	if p.Rot[i] {
		rot = 1
	}
	return 1<<63 | uint64(x)<<32 | uint64(y)<<1 | rot, true
}

// fits16 reports whether v can be stored in 16 bits without aliasing
// another value; arrays are placement bounding boxes (possibly margin-
// widened), so this never fails in practice.
func fits16(v int) bool { return v >= -1<<15 && v < 1<<15 }

// memoKeyFor builds module mi's memo key into the shared key buffer;
// ok is false when the configuration cannot be encoded (oversized
// coordinates). The returned slice aliases inc.keyBuf and is only
// valid until the next call.
func (inc *Incremental) memoKeyFor(mi int) ([]uint64, bool) {
	a := inc.array
	if !fits16(a.X) || !fits16(a.Y) || !fits16(a.W) || !fits16(a.H) {
		return nil, false
	}
	key := inc.keyBuf[:len(inc.adj[mi])+2]
	key[0] = uint64(uint16(a.X))<<48 | uint64(uint16(a.Y))<<32 |
		uint64(uint16(a.W))<<16 | uint64(uint16(a.H))
	c, ok := packCfg(inc.p, mi)
	if !ok {
		return nil, false
	}
	key[1] = c
	for t, j := range inc.adj[mi] {
		if c, ok = packCfg(inc.p, j); !ok {
			return nil, false
		}
		key[t+2] = c
	}
	return key, true
}

// evalModule returns module mi's analysis for the current array and
// placement, consulting the memo first. Returned slices are memo-owned
// and must not be mutated.
func (inc *Incremental) evalModule(mi int) ([]int32, bool) {
	if inc.memoOK[mi] {
		if key, ok := inc.memoKeyFor(mi); ok {
			t := inc.memo[mi]
			h := hashKey(key)
			if v, hit := t.lookup(key, h); hit {
				inc.hits++
				return v.uncovered, v.reloc
			}
			inc.evals++
			u, r := inc.scratch.evalWith(inc.p, mi, nil, &inc.miners[mi])
			if t.n >= memoCapPerModule {
				t.reset()
			}
			t.insert(key, h, memoVal{u, r})
			return u, r
		}
	}
	inc.evals++
	return inc.scratch.evalWith(inc.p, mi, nil, &inc.miners[mi])
}

// NewIncremental builds the incremental evaluator for p on its current
// bounding box, evaluating every module once.
func NewIncremental(p *place.Placement) *Incremental {
	inc := &Incremental{
		p:         p,
		adj:       place.ConflictAdjacency(p.Modules),
		uncovered: make([][]int32, len(p.Modules)),
		reloc:     make([]bool, len(p.Modules)),
		memo:      make([]*memoTable, len(p.Modules)),
		memoOK:    make([]bool, len(p.Modules)),
		miners:    make([]emptyrect.Miner, len(p.Modules)),
	}
	for i := range p.Modules {
		if kw := len(inc.adj[i]) + 2; kw <= maxKeyWords {
			inc.memoOK[i] = true
			inc.memo[i] = newMemoTable(kw)
		}
	}
	inc.rebuild(p.BoundingBox())
	return inc
}

// Covered returns the number of C-covered cells on the current array;
// it equals ComputeOn(p, Array()).Covered.
func (inc *Incremental) Covered() int { return inc.covered }

// Total returns the cell count of the current array.
func (inc *Incremental) Total() int { return inc.array.Cells() }

// Array returns the array the index is currently computed over.
func (inc *Incremental) Array() geom.Rect { return inc.array }

// FTI returns the fault tolerance index, computed with the same
// floating-point expression as Result.FTI.
func (inc *Incremental) FTI() float64 {
	if inc.Total() == 0 {
		return 0
	}
	return float64(inc.covered) / float64(inc.Total())
}

// Stats reports the cumulative per-module evaluation counts: evals is
// the number of module analyses actually run, hits the number skipped
// because their inputs were unchanged. The cache hit rate is
// hits/(evals+hits).
func (inc *Incremental) Stats() (evals, hits int64) { return inc.evals, inc.hits }

// AffectedBy returns the modules whose analysis a move of the listed
// modules invalidates: the moved modules plus their span-overlap
// neighbours, deduplicated. This is the dirty set to pass to Apply
// (when the array is unchanged — Apply rebuilds everything anyway when
// it moves).
func (inc *Incremental) AffectedBy(moved ...int) []int {
	seen := make(map[int]bool, 4)
	var out []int
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	for _, i := range moved {
		add(i)
		for _, j := range inc.adj[i] {
			add(j)
		}
	}
	return out
}

// Apply re-evaluates the placement after a mutation: the placement
// must already reflect the move, array must be its new bounding box,
// and dirty must contain (at least) every module whose inputs changed,
// without duplicates. The previous analysis is retained until Commit
// or Revert; Apply panics if a speculation is already staged.
func (inc *Incremental) Apply(array geom.Rect, dirty []int) {
	if inc.staged {
		panic("fti: Apply while a speculation is staged")
	}
	inc.staged = true
	if array != inc.array {
		// The matrix every module is analysed on changed: full rebuild,
		// with the old state saved aside wholesale.
		inc.fullSwap = true
		inc.savedArray = inc.array
		inc.savedCover = inc.covered
		inc.savedKnock = inc.knock
		inc.savedUncov = inc.uncovered
		inc.savedReloc = inc.reloc
		inc.knock = inc.spareKnock
		inc.uncovered = inc.spareUncov
		inc.reloc = inc.spareReloc
		if inc.uncovered == nil {
			inc.uncovered = make([][]int32, len(inc.p.Modules))
			inc.reloc = make([]bool, len(inc.p.Modules))
		}
		inc.rebuild(array)
		return
	}
	inc.fullSwap = false
	inc.savedCover = inc.covered
	if len(dirty) > 0 {
		inc.ensureScratch()
	}
	inc.dirty = append(inc.dirty[:0], dirty...)
	if inc.savedUncov == nil {
		inc.savedUncov = make([][]int32, 0, 8)
		inc.savedReloc = make([]bool, 0, 8)
	}
	inc.savedUncov = inc.savedUncov[:0]
	inc.savedReloc = inc.savedReloc[:0]
	for _, mi := range dirty {
		inc.savedUncov = append(inc.savedUncov, inc.uncovered[mi])
		inc.savedReloc = append(inc.savedReloc, inc.reloc[mi])
		inc.knockRemove(inc.uncovered[mi])
		inc.uncovered[mi], inc.reloc[mi] = inc.evalModule(mi)
		inc.knockAdd(inc.uncovered[mi])
	}
	inc.hits += int64(len(inc.p.Modules) - len(dirty))
}

// Commit keeps the staged analysis, releasing the saved one.
func (inc *Incremental) Commit() {
	if !inc.staged {
		panic("fti: Commit without Apply")
	}
	inc.staged = false
	if inc.fullSwap {
		inc.spareKnock = inc.savedKnock
		inc.spareUncov = inc.savedUncov
		inc.spareReloc = inc.savedReloc
		inc.savedKnock, inc.savedUncov, inc.savedReloc = nil, nil, nil
		return
	}
	inc.savedUncov = inc.savedUncov[:0]
	inc.savedReloc = inc.savedReloc[:0]
}

// Revert discards the staged analysis and reinstates the saved one.
// The caller must restore the placement to its pre-move configuration
// before the next Apply.
func (inc *Incremental) Revert() {
	if !inc.staged {
		panic("fti: Revert without Apply")
	}
	inc.staged = false
	if inc.fullSwap {
		inc.spareKnock = inc.knock
		inc.spareUncov = inc.uncovered
		inc.spareReloc = inc.reloc
		inc.array = inc.savedArray
		inc.covered = inc.savedCover
		inc.knock = inc.savedKnock
		inc.uncovered = inc.savedUncov
		inc.reloc = inc.savedReloc
		inc.savedKnock, inc.savedUncov, inc.savedReloc = nil, nil, nil
		return
	}
	for i := len(inc.dirty) - 1; i >= 0; i-- {
		mi := inc.dirty[i]
		inc.knockRemove(inc.uncovered[mi])
		inc.knockAdd(inc.savedUncov[i])
		inc.uncovered[mi] = inc.savedUncov[i]
		inc.reloc[mi] = inc.savedReloc[i]
	}
	inc.savedUncov = inc.savedUncov[:0]
	inc.savedReloc = inc.savedReloc[:0]
	if inc.covered != inc.savedCover {
		panic(fmt.Sprintf("fti: revert mismatch: covered %d != saved %d",
			inc.covered, inc.savedCover))
	}
}

// rebuild evaluates every module from scratch on the given array.
func (inc *Incremental) rebuild(array geom.Rect) {
	inc.array = array
	total := array.Cells()
	if cap(inc.knock) < total {
		inc.knock = make([]int32, total)
	} else {
		inc.knock = inc.knock[:total]
		for i := range inc.knock {
			inc.knock[i] = 0
		}
	}
	inc.covered = total
	if total > 0 && len(inc.p.Modules) > 0 {
		inc.ensureScratch()
		for mi := range inc.p.Modules {
			inc.uncovered[mi], inc.reloc[mi] = inc.evalModule(mi)
			inc.knockAdd(inc.uncovered[mi])
		}
	} else {
		for mi := range inc.uncovered {
			inc.uncovered[mi] = nil
			inc.reloc[mi] = false
		}
	}
}

// ensureScratch (re)sizes the shared evaluation buffers for the
// current array. The grid is reallocated only when the dimensions
// change; an origin-only array shift reuses it.
func (inc *Incremental) ensureScratch() {
	if inc.scratch == nil {
		inc.scratch = newModuleEval(inc.array)
		return
	}
	if inc.scratch.g.W() != inc.array.W || inc.scratch.g.H() != inc.array.H {
		inc.scratch.g.Resize(inc.array.W, inc.array.H)
	}
	inc.scratch.array = inc.array
}

func (inc *Incremental) knockAdd(cells []int32) {
	for _, c := range cells {
		if inc.knock[c] == 0 {
			inc.covered--
		}
		inc.knock[c]++
	}
}

func (inc *Incremental) knockRemove(cells []int32) {
	for _, c := range cells {
		inc.knock[c]--
		if inc.knock[c] == 0 {
			inc.covered++
		}
	}
}
