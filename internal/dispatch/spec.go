package dispatch

import (
	"context"
	"fmt"
	"sync"

	"dmfb/internal/campaign"
	"dmfb/internal/core"
	"dmfb/internal/defect"
	"dmfb/internal/faultsim"
	"dmfb/internal/fti"
	"dmfb/internal/pipeline"
	"dmfb/internal/sim"
	"dmfb/internal/telemetry"
)

// Spec is the portable definition of a fault-injection campaign — the
// document a client submits to the dispatcher and a simd worker turns
// back into a runnable trial function. It mirrors the dmfb-campaign
// flag surface, and every consumer (the single-process CLI, the
// dispatcher, every worker) derives the campaign's name, fingerprint
// and trial function from the same Spec methods, which is what keeps
// a distributed run byte-identical to a local one.
type Spec struct {
	// Mode selects the campaign kind: "single", "multi", "yield",
	// "assay" (dispatcher-distributable) or "exhaustive" (local only —
	// its trial count is a function of the placement).
	Mode string `json:"mode"`
	// Trials and Seed are the campaign dimensions; trial t always runs
	// with the RNG stream campaign.TrialRNG(Seed, t).
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed"`
	// K is the faults per trial (multi and assay modes).
	K int `json:"k,omitempty"`
	// Q is the mean per-cell defect probability (yield mode).
	Q float64 `json:"q,omitempty"`
	// DefectModel selects the yield-mode defect map generator:
	// uniform | clustered | file (uniform when empty).
	DefectModel string `json:"defect_model,omitempty"`
	// ClusterSize and ClusterRadius parameterise the clustered model
	// (mean defects per cluster; Chebyshev scatter radius in cells).
	ClusterSize   float64 `json:"cluster_size,omitempty"`
	ClusterRadius int     `json:"cluster_radius,omitempty"`
	// DefectMap is the serialized defect map for the file model, in
	// defect.ParseMap format. The content travels in the spec — not a
	// filename — so remote workers need no shared filesystem.
	DefectMap string `json:"defect_map,omitempty"`
	// Spares threads that many interstitial spare lines through the
	// placement before trials (space redundancy; place.SpareSplit
	// divides the budget between columns and rows).
	Spares int `json:"spares,omitempty"`
	// Ladder switches yield mode from the partial-reconfiguration
	// recovery loop to the design-time local-reconfiguration pass
	// (defect.Reconfigure): a die survives when the full recovery
	// ladder absorbs its whole defect map before the assay starts.
	Ladder bool `json:"ladder,omitempty"`
	// Full enables the full re-placement fallback (multi and yield).
	Full bool `json:"full,omitempty"`
	// Recovery is the assay-mode fault response: l1 | ladder | off.
	Recovery string `json:"recovery,omitempty"`
	// Transient is the assay-mode probability a fault is transient.
	Transient float64 `json:"transient,omitempty"`
	// PlaceSeed seeds the annealed PCR placement under test.
	PlaceSeed int64 `json:"place_seed,omitempty"`
}

// Normalized returns the spec with the dmfb-campaign flag defaults
// filled in, so a sparse wire document and a fully spelled-out one
// name (and fingerprint) the same campaign.
func (sp Spec) Normalized() Spec {
	if sp.Mode == "" {
		sp.Mode = "multi"
	}
	if sp.K == 0 {
		sp.K = 2
	}
	if sp.Q == 0 {
		sp.Q = 0.01
	}
	if sp.DefectModel == "" {
		sp.DefectModel = defect.ModelUniform
	}
	if sp.ClusterSize == 0 {
		sp.ClusterSize = 4
	}
	if sp.ClusterRadius == 0 {
		sp.ClusterRadius = 2
	}
	if sp.Recovery == "" {
		sp.Recovery = "l1"
	}
	if sp.PlaceSeed == 0 {
		sp.PlaceSeed = 2
	}
	return sp
}

// Validate checks the spec describes a runnable campaign. With remote
// set it additionally rejects modes the dispatcher cannot shard
// (exhaustive needs the placement to know its own trial count).
func (sp Spec) Validate(remote bool) error {
	sp = sp.Normalized()
	switch sp.Mode {
	case "single", "multi", "yield", "assay":
	case "exhaustive":
		if remote {
			return fmt.Errorf("dispatch: -mode exhaustive derives its trial count from the placement; run it with dmfb-campaign")
		}
	default:
		return fmt.Errorf("dispatch: unknown mode %q (want single, multi, yield, assay or exhaustive)", sp.Mode)
	}
	if sp.Trials <= 0 && sp.Mode != "exhaustive" {
		return fmt.Errorf("dispatch: need at least one trial, got %d", sp.Trials)
	}
	if sp.K < 1 {
		return fmt.Errorf("dispatch: need at least one fault per trial, got k=%d", sp.K)
	}
	if sp.Q <= 0 || sp.Q >= 1 {
		return fmt.Errorf("dispatch: defect probability q=%g outside (0,1)", sp.Q)
	}
	if sp.Mode == "yield" {
		if err := sp.DefectParams().Validate(); err != nil {
			return fmt.Errorf("dispatch: %w", err)
		}
	}
	if sp.Spares < 0 || sp.Spares > 8 {
		return fmt.Errorf("dispatch: spare budget %d outside [0,8]", sp.Spares)
	}
	if _, err := sim.ParseRecoveryMode(sp.Recovery); err != nil {
		return err
	}
	return nil
}

// DefectParams assembles the yield-mode defect model description from
// the spec's flat fields.
func (sp Spec) DefectParams() defect.Params {
	sp = sp.Normalized()
	return defect.Params{
		Model:         sp.DefectModel,
		Prob:          sp.Q,
		ClusterSize:   sp.ClusterSize,
		ClusterRadius: sp.ClusterRadius,
		Map:           sp.DefectMap,
	}
}

// Name returns the campaign's summary name, identical to what
// dmfb-campaign derives from the same parameters.
func (sp Spec) Name() string {
	sp = sp.Normalized()
	switch sp.Mode {
	case "multi":
		return fmt.Sprintf("multi-k%d", sp.K)
	case "yield":
		var name string
		switch sp.DefectModel {
		case defect.ModelClustered:
			name = fmt.Sprintf("yield-clustered-q%g", sp.Q)
		case defect.ModelFile:
			name = "yield-file"
		default:
			name = fmt.Sprintf("yield-q%g", sp.Q)
		}
		if sp.Spares > 0 {
			name += fmt.Sprintf("-s%d", sp.Spares)
		}
		if sp.Ladder {
			name += "-ladder"
		}
		return name
	case "assay":
		rm, err := sim.ParseRecoveryMode(sp.Recovery)
		if err != nil {
			return "assay-invalid"
		}
		return fmt.Sprintf("assay-k%d-%s", sp.K, rm)
	default:
		return sp.Mode
	}
}

// Fingerprint hashes the trial-defining parameters — everything that
// changes what a trial computes except the campaign seed and trial
// count, which the checkpoint header pins separately. Two specs with
// equal fingerprints share a placement and trial function, so the
// builder cache and the checkpoint resume guard both key on it.
func (sp Spec) Fingerprint() string {
	sp = sp.Normalized()
	parts := []any{"dmfb-campaign",
		sp.Mode, sp.K, sp.Q, sp.Full, sp.Recovery, sp.Transient, sp.PlaceSeed}
	// The defect model and space-redundancy extensions only fold in
	// when set, so pre-existing uniform campaigns keep their recorded
	// fingerprints (and their resumable checkpoints).
	if sp.DefectModel != defect.ModelUniform || sp.Spares != 0 || sp.Ladder {
		parts = append(parts, sp.DefectParams().FingerprintParts()...)
		parts = append(parts, sp.Spares, sp.Ladder)
	}
	return campaign.ConfigFingerprint(parts...)
}

// Built is a spec turned runnable: the trial function over the
// annealed placement, plus the facts clients report about it.
type Built struct {
	Fn campaign.TrialFunc
	// Trials is the canonical trial count: the spec's, except in
	// exhaustive mode where it is the placed array's cell count.
	Trials int
	// PredictedFTI is the placement's fault-tolerance index.
	PredictedFTI float64
	// ArrayW, ArrayH and Modules describe the placement under test.
	ArrayW, ArrayH, Modules int
}

// BuildOptions parameterises Build; all fields are optional.
type BuildOptions struct {
	// Tool names the pipeline invocation in traces ("dmfb-simd", ...).
	Tool    string
	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry
}

// Build synthesises and places the PCR case study with
// experiment-grade annealing and returns the spec's trial function.
// Identical specs build identical placements (the anneal is seeded by
// PlaceSeed), so every worker in a fleet tests the same chip.
func (sp Spec) Build(ctx context.Context, opts BuildOptions) (*Built, error) {
	sp = sp.Normalized()
	if err := sp.Validate(false); err != nil {
		return nil, err
	}
	tool := opts.Tool
	if tool == "" {
		tool = "dispatch"
	}
	res, err := pipeline.Run(ctx, pipeline.Request{
		Tool:  tool,
		Synth: &pipeline.SynthSpec{Assay: "pcr"},
		Place: &pipeline.PlaceSpec{
			Placer:  "sa",
			Options: core.Options{Seed: sp.PlaceSeed, ItersPerModule: 120, WindowPatience: 4},
			Spares:  sp.Spares,
		},
		Tracer:  opts.Tracer,
		Metrics: opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	p := res.Placement
	array := p.BoundingBox()
	b := &Built{
		Trials:       sp.Trials,
		PredictedFTI: fti.Compute(p).FTI(),
		ArrayW:       array.W,
		ArrayH:       array.H,
		Modules:      len(p.Modules),
	}
	// The heavy annealer options of the full-reconfiguration fallback,
	// identical to dmfb-campaign's.
	heavy := core.Options{Seed: 3, ItersPerModule: 40, WindowPatience: 2}
	switch sp.Mode {
	case "single":
		b.Fn = faultsim.SingleFaultTrial(p)
	case "multi":
		b.Fn = faultsim.MultiFaultTrial(p, sp.K, sp.Full, heavy)
	case "yield":
		gen, err := sp.DefectParams().Generator()
		if err != nil {
			return nil, err
		}
		if sp.Ladder {
			b.Fn = faultsim.LadderYieldTrial(res.Schedule, p, gen, heavy)
		} else {
			b.Fn = faultsim.DefectYieldTrial(p, gen, sp.Full, heavy)
		}
	case "exhaustive":
		b.Fn = faultsim.ExhaustiveTrial(p)
		b.Trials = array.Cells()
	case "assay":
		rm, err := sim.ParseRecoveryMode(sp.Recovery)
		if err != nil {
			return nil, err
		}
		b.Fn = faultsim.AssayTrial(res.Schedule, p, sp.K, rm, sp.Transient)
	}
	return b, nil
}

// BuildFunc is the Builder's construction seam; tests inject synthetic
// trial functions through it.
type BuildFunc func(ctx context.Context, sp Spec) (*Built, error)

// Builder builds trial functions from specs, caching by spec
// fingerprint: a worker that leases many chunks of the same campaign
// (or of several campaigns over the same placement) anneals the
// placement once. Safe for concurrent use; concurrent builds of the
// same fingerprint are serialised so the anneal runs once.
type Builder struct {
	// Tool/Tracer/Metrics flow into Spec.Build for uncached builds.
	Tool    string
	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry
	// Build overrides Spec.Build when non-nil (tests).
	Build BuildFunc

	mu    sync.Mutex
	cache map[string]*builderEntry
}

type builderEntry struct {
	once  sync.Once
	built *Built
	err   error
}

// Get returns the built trial function for sp, building at most once
// per fingerprint.
func (b *Builder) Get(ctx context.Context, sp Spec) (*Built, error) {
	key := sp.Fingerprint()
	b.mu.Lock()
	if b.cache == nil {
		b.cache = make(map[string]*builderEntry)
	}
	e := b.cache[key]
	if e == nil {
		e = &builderEntry{}
		b.cache[key] = e
	}
	b.mu.Unlock()
	e.once.Do(func() {
		build := b.Build
		if build == nil {
			build = func(ctx context.Context, sp Spec) (*Built, error) {
				return sp.Build(ctx, BuildOptions{Tool: b.Tool, Tracer: b.Tracer, Metrics: b.Metrics})
			}
		}
		e.built, e.err = build(ctx, sp)
	})
	if e.err != nil {
		// Failed builds are not cached — a later lease retries.
		b.mu.Lock()
		if b.cache[key] == e {
			delete(b.cache, key)
		}
		b.mu.Unlock()
		return nil, e.err
	}
	// The fingerprint (hence the cache key) excludes Trials and Seed,
	// so the shared entry carries the trial count of whichever spec
	// built it — return a copy dimensioned for this caller.
	out := *e.built
	if sp.Normalized().Mode != "exhaustive" {
		out.Trials = sp.Trials
	}
	return &out, nil
}
