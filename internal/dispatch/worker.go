package dispatch

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"dmfb/internal/campaign"
	"dmfb/internal/telemetry"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the worker to the dispatcher (required).
	Name string
	// Dispatcher is the dispatcher base URL (required).
	Dispatcher string
	// Workers sizes the in-process trial pool per lease; 0 means
	// GOMAXPROCS.
	Workers int
	// Batch is how many trials to accumulate before streaming a
	// results batch; 0 means 32. Smaller batches lose less work to a
	// mid-lease kill.
	Batch int
	// MaxIdle exits the poll loop after this long without a lease;
	// 0 runs forever (until ctx cancels).
	MaxIdle time.Duration
	// Builder caches built trial functions; a private one is created
	// when nil. Sharing one across in-process workers (tests) anneals
	// the placement once for the whole fleet.
	Builder *Builder
	// Metrics, when non-nil, receives simd.* counters.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records the builds' pipeline spans.
	Tracer *telemetry.Tracer
	// HTTPClient overrides the default client (tests).
	HTTPClient *http.Client
	// Logf, when non-nil, receives progress lines (lease grants,
	// completions, expiries).
	Logf func(format string, args ...any)
}

// RunWorker is the simd daemon loop: register, poll for leases, run
// each leased trial range through the campaign engine, stream results
// back in batches, heartbeat in the background. It returns nil when
// ctx cancels or MaxIdle elapses with no work, and an error only when
// the dispatcher is unreachable at registration.
//
// Crash-safety needs no worker-side code: results stream as they are
// computed, so a killed worker loses at most one unreported batch, and
// the dispatcher re-issues the remainder of the chunk when the lease's
// heartbeat stops.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Name == "" {
		return fmt.Errorf("simd: worker name required")
	}
	if opts.Dispatcher == "" {
		return fmt.Errorf("simd: dispatcher URL required")
	}
	if opts.Batch <= 0 {
		opts.Batch = 32
	}
	builder := opts.Builder
	if builder == nil {
		builder = &Builder{Tool: "dmfb-simd", Tracer: opts.Tracer, Metrics: opts.Metrics}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := NewClient(opts.Dispatcher, opts.HTTPClient)

	hello, err := client.Register(ctx, RegisterRequest{Worker: opts.Name, Cores: runtime.GOMAXPROCS(0)})
	if err != nil {
		return fmt.Errorf("simd: register with %s: %w", opts.Dispatcher, err)
	}
	ttl := time.Duration(hello.LeaseTTLMS) * time.Millisecond
	poll := time.Duration(hello.PollMS) * time.Millisecond
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	logf("registered with %s (lease ttl %v, poll %v)", opts.Dispatcher, ttl, poll)

	idleSince := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		l, ok, err := client.Lease(ctx, opts.Name)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			// The dispatcher may be restarting; back off and retry.
			reg.Counter("simd.lease_errors").Inc()
			logf("lease request failed: %v", err)
		} else if ok {
			idleSince = time.Now()
			reg.Counter("simd.leases").Inc()
			logf("lease %s: %s[%d,%d)", l.LeaseID, l.CampaignID, l.Lo, l.Hi)
			if err := runLease(ctx, client, builder, reg, logf, opts, l, ttl); err != nil {
				reg.Counter("simd.lease_failures").Inc()
				logf("lease %s: %v", l.LeaseID, err)
			}
			continue // immediately ask for more work
		}
		if opts.MaxIdle > 0 && time.Since(idleSince) > opts.MaxIdle {
			logf("idle for %v, exiting", opts.MaxIdle)
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(poll):
		}
	}
}

// runLease executes one leased trial range: build (cached) the trial
// function, heartbeat in the background, run the range in Batch-sized
// sub-ranges and stream each batch. A 410 from heartbeat or results
// cancels the lease context — the remaining trials are abandoned to
// whichever worker holds the re-issued chunk.
func runLease(ctx context.Context, client *Client, builder *Builder,
	reg *telemetry.Registry, logf func(string, ...any),
	opts WorkerOptions, l LeaseResponse, ttl time.Duration) error {

	lctx, cancel := context.WithCancel(ctx)
	defer cancel()

	built, err := builder.Get(lctx, l.Spec)
	if err != nil {
		// Build failures are deterministic in the spec: report so the
		// dispatcher fails the campaign instead of re-issuing forever.
		_, rerr := client.Results(ctx, ResultsRequest{
			CampaignID: l.CampaignID, LeaseID: l.LeaseID,
			Error: fmt.Sprintf("worker %s: build campaign: %v", opts.Name, err),
		})
		if rerr != nil {
			return fmt.Errorf("build failed (%v); reporting failed too: %w", err, rerr)
		}
		return fmt.Errorf("build: %w", err)
	}

	// Heartbeat at a third of the TTL until the lease finishes. The
	// cancel must precede the join: deferred functions run LIFO, and
	// the goroutine only exits once lctx is cancelled (or the
	// dispatcher answers 410 — which it can't if it's already gone).
	hbDone := make(chan struct{})
	defer func() { cancel(); <-hbDone }()
	go func() {
		defer close(hbDone)
		interval := ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-lctx.Done():
				return
			case <-t.C:
				if err := client.Heartbeat(lctx, l.LeaseID); err != nil {
					if IsStatus(err, http.StatusGone) {
						logf("lease %s expired under us, abandoning", l.LeaseID)
						cancel()
						return
					}
					reg.Counter("simd.heartbeat_errors").Inc()
				}
			}
		}
	}()

	cfg := campaign.Config{
		Name:    l.Name,
		Trials:  built.Trials,
		Workers: opts.Workers,
		Seed:    l.Spec.Seed,
		Metrics: opts.Metrics,
		Tracer:  opts.Tracer,
	}
	for lo := l.Lo; lo < l.Hi; lo += opts.Batch {
		hi := lo + opts.Batch
		if hi > l.Hi {
			hi = l.Hi
		}
		results, err := campaign.RunRange(lctx, cfg, built.Fn, lo, hi)
		if err != nil {
			if lctx.Err() != nil {
				return nil // lease lost or shutdown; abandon quietly
			}
			return fmt.Errorf("run [%d,%d): %w", lo, hi, err)
		}
		resp, err := client.Results(lctx, ResultsRequest{
			CampaignID: l.CampaignID, LeaseID: l.LeaseID,
			Results:  results,
			Complete: hi == l.Hi,
		})
		if err != nil {
			if IsStatus(err, http.StatusGone) || lctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("report [%d,%d): %w", lo, hi, err)
		}
		reg.Counter("simd.trials_reported").Add(int64(len(results)))
		if resp.State == "done" || resp.State == "failed" {
			logf("lease %s: campaign %s %s", l.LeaseID, l.CampaignID, resp.State)
			return nil
		}
	}
	return nil
}
