package dispatch

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmfb/internal/campaign"
	"dmfb/internal/telemetry"
)

// syntheticBuild is the test build seam: a cheap deterministic trial
// function (no synthesis, no annealing) that still depends on the
// per-trial RNG stream, so byte-identity claims are meaningful.
func syntheticBuild(_ context.Context, sp Spec) (*Built, error) {
	return &Built{
		Fn: func(_ context.Context, t campaign.Trial) campaign.Outcome {
			v := t.RNG.Float64()
			return campaign.Outcome{Survived: v < 0.6, Value: float64(t.RNG.Intn(5))}
		},
		Trials: sp.Trials,
	}, nil
}

// testSpec is the campaign the unit tests submit.
func testSpec(trials int) Spec {
	return Spec{Mode: "assay", K: 1, Trials: trials, Seed: 5, Recovery: "l1"}
}

// referenceSummary is the single-process engine's deterministic bytes
// for sp under the synthetic trial function.
func referenceSummary(t *testing.T, sp Spec) []byte {
	t.Helper()
	b, err := syntheticBuild(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(context.Background(), campaign.Config{
		Name: sp.Name(), Trials: sp.Trials, Seed: sp.Seed, Workers: 1,
	}, b.Fn)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.Summary.MarshalDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

// testClock is the injectable lease clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1000, 0)}
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newTestDispatcher builds a dispatcher + HTTP server + client wired
// to a manual clock.
func newTestDispatcher(t *testing.T, opts Options) (*Dispatcher, *Client, *testClock) {
	t.Helper()
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	clock := newTestClock()
	d.now = clock.now
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := d.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return d, NewClient(srv.URL, srv.Client()), clock
}

// drainCampaign plays a minimal worker by hand: lease, run, report,
// until the dispatcher has no work left. Returns how many leases it
// served.
func drainCampaign(t *testing.T, c *Client, worker string) int {
	t.Helper()
	ctx := context.Background()
	served := 0
	for {
		l, ok, err := c.Lease(ctx, worker)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if !ok {
			return served
		}
		served++
		b, err := syntheticBuild(ctx, l.Spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := campaign.RunRange(ctx, campaign.Config{
			Name: l.Name, Trials: b.Trials, Seed: l.Spec.Seed, Workers: 1,
		}, b.Fn, l.Lo, l.Hi)
		if err != nil {
			t.Fatalf("run range: %v", err)
		}
		if _, err := c.Results(ctx, ResultsRequest{
			CampaignID: l.CampaignID, LeaseID: l.LeaseID, Results: res, Complete: true,
		}); err != nil {
			t.Fatalf("report: %v", err)
		}
	}
}

func TestDispatchLifecycleByteIdentity(t *testing.T) {
	_, client, _ := newTestDispatcher(t, Options{Chunk: 16})
	ctx := context.Background()
	sp := testSpec(100)

	sub, err := client.Submit(ctx, sp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if sub.ID == "" || sub.Name != "assay-k1-l1" || sub.Trials != 100 || sub.State != "queued" {
		t.Fatalf("unexpected submit response: %+v", sub)
	}

	if _, err := client.Summary(ctx, sub.ID); !IsStatus(err, http.StatusConflict) {
		t.Errorf("summary before completion: want 409, got %v", err)
	}

	if served := drainCampaign(t, client, "w1"); served != 7 { // ceil(100/16)
		t.Errorf("served %d leases, want 7", served)
	}

	st, err := client.Status(ctx, sub.ID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != "done" || st.Done != 100 || st.PendingChunks != 0 || st.LeasedChunks != 0 {
		t.Fatalf("unexpected final status: %+v", st)
	}
	if st.Summary == nil {
		t.Fatal("final status has no summary")
	}

	got, err := client.Summary(ctx, sub.ID)
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	if want := referenceSummary(t, sp); string(got) != string(want) {
		t.Errorf("distributed summary differs from single-process:\n got %s\nwant %s", got, want)
	}
}

func TestDispatchLeaseExpiryReissue(t *testing.T) {
	d, client, clock := newTestDispatcher(t, Options{Chunk: 32, LeaseTTL: 10 * time.Second})
	ctx := context.Background()
	sub, err := client.Submit(ctx, testSpec(64))
	if err != nil {
		t.Fatal(err)
	}

	// Worker w1 takes a lease and dies silently.
	l1, ok, err := client.Lease(ctx, "w1")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}

	// Before the TTL, the chunk is not re-issued to others: w2 gets the
	// second chunk, then nothing.
	l2, ok, err := client.Lease(ctx, "w2")
	if err != nil || !ok {
		t.Fatalf("second lease: ok=%v err=%v", ok, err)
	}
	if l2.Lo == l1.Lo {
		t.Fatalf("chunk [%d,%d) double-leased while live", l1.Lo, l1.Hi)
	}
	if _, ok, _ := client.Lease(ctx, "w2"); ok {
		t.Fatal("third lease granted but only two chunks exist")
	}

	// Heartbeats keep l2 alive across the TTL; l1 expires.
	clock.advance(6 * time.Second)
	if err := client.Heartbeat(ctx, l2.LeaseID); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clock.advance(6 * time.Second)

	l3, ok, err := client.Lease(ctx, "w2")
	if err != nil || !ok {
		t.Fatalf("re-issued lease: ok=%v err=%v", ok, err)
	}
	if l3.Lo != l1.Lo || l3.Hi != l1.Hi {
		t.Fatalf("re-issued [%d,%d), want w1's [%d,%d)", l3.Lo, l3.Hi, l1.Lo, l1.Hi)
	}
	if err := client.Heartbeat(ctx, l1.LeaseID); !IsStatus(err, http.StatusGone) {
		t.Errorf("heartbeat on expired lease: want 410, got %v", err)
	}
	if n := d.reg.Counter("dispatch.leases_expired").Value(); n != 1 {
		t.Errorf("leases_expired = %d, want 1", n)
	}

	// The zombie w1 still reports its range — accepted (identical bytes
	// by determinism), and the campaign completes without w2's copy.
	b, _ := syntheticBuild(ctx, l1.Spec)
	res, err := campaign.RunRange(ctx, campaign.Config{
		Name: l1.Name, Trials: b.Trials, Seed: l1.Spec.Seed, Workers: 1,
	}, b.Fn, l1.Lo, l1.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Results(ctx, ResultsRequest{
		CampaignID: l1.CampaignID, LeaseID: l1.LeaseID, Results: res, Complete: true,
	}); err != nil {
		t.Fatalf("zombie report: %v", err)
	}
	// w2 finishes its live lease; everything is now recorded.
	b2, _ := syntheticBuild(ctx, l2.Spec)
	res2, err := campaign.RunRange(ctx, campaign.Config{
		Name: l2.Name, Trials: b2.Trials, Seed: l2.Spec.Seed, Workers: 1,
	}, b2.Fn, l2.Lo, l2.Hi)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Results(ctx, ResultsRequest{
		CampaignID: l2.CampaignID, LeaseID: l2.LeaseID, Results: res2, Complete: true,
	})
	if err != nil {
		t.Fatalf("w2 report: %v", err)
	}
	if resp.State != "done" {
		t.Fatalf("state %q after all ranges reported, want done", resp.State)
	}
	got, err := client.Summary(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceSummary(t, testSpec(64)); string(got) != string(want) {
		t.Errorf("summary after expiry/re-issue differs:\n got %s\nwant %s", got, want)
	}
}

func TestDispatchAdmissionControl(t *testing.T) {
	_, client, _ := newTestDispatcher(t, Options{Chunk: 16, MaxCampaigns: 1})
	ctx := context.Background()
	if _, err := client.Submit(ctx, testSpec(32)); err != nil {
		t.Fatal(err)
	}
	_, err := client.Submit(ctx, testSpec(32))
	if !IsStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("second submit: want 429, got %v", err)
	}
	drainCampaign(t, client, "w1")
	if _, err := client.Submit(ctx, testSpec(32)); err != nil {
		t.Fatalf("submit after completion: %v", err)
	}
}

func TestDispatchRejectsBadSpecs(t *testing.T) {
	_, client, _ := newTestDispatcher(t, Options{})
	ctx := context.Background()
	cases := []Spec{
		{Mode: "exhaustive", Trials: 10, Seed: 1},
		{Mode: "nonsense", Trials: 10, Seed: 1},
		{Mode: "assay", Trials: 0, Seed: 1},
		{Mode: "assay", Trials: 10, Seed: 1, Recovery: "bogus"},
	}
	for _, sp := range cases {
		if _, err := client.Submit(ctx, sp); !IsStatus(err, http.StatusBadRequest) {
			t.Errorf("spec %+v: want 400, got %v", sp, err)
		}
	}
	if _, err := client.Status(ctx, "c999999"); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("unknown campaign: want 404, got %v", err)
	}
}

func TestDispatchWorkerBuildFailureFailsCampaign(t *testing.T) {
	_, client, _ := newTestDispatcher(t, Options{Chunk: 16})
	ctx := context.Background()
	sub, err := client.Submit(ctx, testSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := client.Lease(ctx, "w1")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if _, err := client.Results(ctx, ResultsRequest{
		CampaignID: l.CampaignID, LeaseID: l.LeaseID,
		Error: "worker w1: build campaign: synthesis exploded",
	}); err != nil {
		t.Fatal(err)
	}
	st, err := client.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || !strings.Contains(st.Failure, "synthesis exploded") {
		t.Fatalf("status after build failure: %+v", st)
	}
	if _, ok, _ := client.Lease(ctx, "w2"); ok {
		t.Error("failed campaign still leasing work")
	}
	// Admission slot was released: a replacement campaign fits.
	if _, err := client.Submit(ctx, testSpec(16)); err != nil {
		t.Fatalf("submit after failure: %v", err)
	}
}

func TestDispatchPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	d1, err := New(Options{StateDir: dir, Chunk: 16, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(d1.Handler())
	client1 := NewClient(srv1.URL, srv1.Client())
	ctx := context.Background()
	sp := testSpec(64)
	sub, err := client1.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}

	// Record the first chunk only, then kill the dispatcher.
	l, ok, err := client1.Lease(ctx, "w1")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	b, _ := syntheticBuild(ctx, l.Spec)
	res, err := campaign.RunRange(ctx, campaign.Config{
		Name: l.Name, Trials: b.Trials, Seed: l.Spec.Seed, Workers: 1,
	}, b.Fn, l.Lo, l.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client1.Results(ctx, ResultsRequest{
		CampaignID: l.CampaignID, LeaseID: l.LeaseID, Results: res, Complete: true,
	}); err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same state dir: the campaign resumes with
	// exactly the unrecorded chunks pending.
	d2, err := New(Options{StateDir: dir, Chunk: 16})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	defer d2.Close()
	client2 := NewClient(srv2.URL, srv2.Client())

	st, err := client2.Status(ctx, sub.ID)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st.State != "running" || st.Done != 16 || st.PendingChunks != 3 {
		t.Fatalf("restarted status: %+v", st)
	}
	if served := drainCampaign(t, client2, "w2"); served != 3 {
		t.Errorf("served %d leases after restart, want 3", served)
	}
	got, err := client2.Summary(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceSummary(t, sp); string(got) != string(want) {
		t.Errorf("summary after restart differs:\n got %s\nwant %s", got, want)
	}

	// A second campaign gets a fresh id, not a recycled one.
	sub2, err := client2.Submit(ctx, testSpec(16))
	if err != nil {
		t.Fatal(err)
	}
	if sub2.ID == sub.ID {
		t.Errorf("campaign id %s reused after restart", sub2.ID)
	}
}

func TestDispatchRestartCompletedCampaignServesSameBytes(t *testing.T) {
	dir := t.TempDir()
	d1, err := New(Options{StateDir: dir, Chunk: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(d1.Handler())
	client1 := NewClient(srv1.URL, srv1.Client())
	ctx := context.Background()
	sp := testSpec(48)
	sub, err := client1.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	drainCampaign(t, client1, "w1")
	want, err := client1.Summary(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Options{StateDir: dir, Chunk: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	defer d2.Close()
	got, err := NewClient(srv2.URL, srv2.Client()).Summary(ctx, sub.ID)
	if err != nil {
		t.Fatalf("summary after restart: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("restarted dispatcher serves different summary bytes:\n got %s\nwant %s", got, want)
	}
}
