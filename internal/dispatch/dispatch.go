// Package dispatch is the distributed campaign service: a dispatcher
// that holds a durable queue of campaign definitions and leases
// chunked trial ranges to simd worker daemons, which run them through
// the campaign engine and stream per-trial results back.
//
// The design follows the SIMQ dispatcher/simd split: the dispatcher
// owns all state (definitions, leases, results) and never computes a
// trial itself; workers are stateless leaseholders that can appear,
// crash and reappear at will. A lease is a contiguous trial range
// [lo, hi) with a heartbeat deadline — a worker that stops
// heartbeating (killed, wedged, partitioned) loses the lease and the
// dispatcher re-issues the chunk to the next worker that asks.
//
// The invariant the whole service is built around: because trial t of
// a campaign seeded S always runs with the RNG stream
// campaign.TrialRNG(S, t), a trial range is location-independent, so
// the dispatcher's merged summary (campaign.Summarize over streamed
// results) is byte-identical to the single-process engine at any
// worker count, across worker kills and dispatcher restarts. Duplicate
// results from a lease that expired while its worker kept computing
// are harmless for the same reason — they are identical bytes.
//
// Durability reuses the campaign checkpoint format: every accepted
// result appends to a per-campaign JSONL result log
// (campaign.ResultLog), and a restarted dispatcher replays the logs to
// resume exactly where it stopped.
package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dmfb/internal/campaign"
	"dmfb/internal/obs"
	"dmfb/internal/server"
	"dmfb/internal/telemetry"
)

// Defaults for zero-valued Options fields.
const (
	DefaultChunk        = 64
	DefaultLeaseTTL     = 10 * time.Second
	DefaultMaxCampaigns = 16
	maxBodyBytes        = 8 << 20 // result batches are bigger than API calls
)

// Options configures New.
type Options struct {
	// StateDir persists campaign definitions (<id>.spec.json) and
	// result logs (<id>.jsonl); "" keeps everything in memory.
	StateDir string
	// Chunk is the lease granularity in trials (default DefaultChunk).
	Chunk int
	// LeaseTTL is how long a lease survives without a heartbeat
	// (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// MaxCampaigns bounds unfinished campaigns; beyond it submissions
	// are answered 429 (default DefaultMaxCampaigns).
	MaxCampaigns int
	// Metrics receives dispatch.* counters; a private registry is
	// created when nil so /metrics always has data.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records dispatch.* spans.
	Tracer *telemetry.Tracer
}

// Dispatcher is the campaign dispatch service. Build with New, mount
// via Handler, stop with Close.
type Dispatcher struct {
	opts     Options
	reg      *telemetry.Registry
	tracer   *telemetry.Tracer
	adm      *server.Admission
	progress *obs.ProgressMux
	mux      *http.ServeMux

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string
	seq       int
	leaseSeq  int
	leases    map[string]*lease
	workers   map[string]*workerInfo

	now func() time.Time // injected by expiry tests
}

// campaignState is one campaign's authoritative record.
type campaignState struct {
	id          string
	spec        Spec
	name        string
	fingerprint string
	state       string // "queued" | "running" | "done" | "failed"
	failure     string

	results   []campaign.TrialResult
	done      []bool
	doneCount int

	pending []int          // chunk indices awaiting a lease, FIFO
	leased  map[int]string // chunk index -> lease id

	log      *campaign.ResultLog // nil without StateDir
	tracker  *campaign.ProgressTracker
	admitted bool
	summary  []byte // MarshalDeterministic bytes once done
}

type lease struct {
	id       string
	worker   string
	campaign string
	chunk    int
	lo, hi   int
	expires  time.Time
}

type workerInfo struct {
	cores    int
	lastSeen time.Time
}

// specDoc is the persisted campaign definition.
type specDoc struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
}

// New builds a dispatcher, replaying any state found in
// opts.StateDir.
func New(opts Options) (*Dispatcher, error) {
	if opts.Chunk <= 0 {
		opts.Chunk = DefaultChunk
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.MaxCampaigns <= 0 {
		opts.MaxCampaigns = DefaultMaxCampaigns
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	d := &Dispatcher{
		opts:      opts,
		reg:       reg,
		tracer:    opts.Tracer,
		adm:       server.NewAdmission(opts.MaxCampaigns),
		progress:  obs.NewProgressMux(),
		campaigns: make(map[string]*campaignState),
		leases:    make(map[string]*lease),
		workers:   make(map[string]*workerInfo),
		now:       time.Now,
	}
	d.progress.Set("dispatcher", d.fleetSnapshot)
	if opts.StateDir != "" {
		if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("dispatch: state dir: %w", err)
		}
		if err := d.load(); err != nil {
			return nil, err
		}
	}
	d.mux = http.NewServeMux()
	d.mux.HandleFunc("POST /v1/campaigns", d.handleSubmit)
	d.mux.HandleFunc("GET /v1/campaigns", d.handleList)
	d.mux.HandleFunc("GET /v1/campaigns/{id}", d.handleStatus)
	d.mux.HandleFunc("GET /v1/campaigns/{id}/summary", d.handleSummary)
	d.mux.HandleFunc("POST /v1/workers", d.handleRegister)
	d.mux.HandleFunc("POST /v1/lease", d.handleLease)
	d.mux.HandleFunc("POST /v1/lease/{id}/heartbeat", d.handleHeartbeat)
	d.mux.HandleFunc("POST /v1/results", d.handleResults)
	obs.NewHandler("dmfb-dispatch", reg, d.progress.Snapshot).Register(d.mux)
	return d, nil
}

// Handler returns the service's HTTP handler (API + ops endpoints).
func (d *Dispatcher) Handler() http.Handler { return d.mux }

// Close flushes and closes every campaign's result log.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for _, c := range d.campaigns {
		if c.log == nil {
			continue
		}
		if err := c.log.Close(); err != nil && first == nil {
			first = err
		}
		c.log = nil
	}
	return first
}

// load replays the state directory: campaign definitions and their
// result logs. Completed campaigns come back done (their summary is
// recomputed — Summarize is deterministic, so the bytes are the ones
// the pre-restart dispatcher would have served); incomplete ones
// re-enter the queue with exactly their missing trials pending.
func (d *Dispatcher) load() error {
	entries, err := os.ReadDir(d.opts.StateDir)
	if err != nil {
		return fmt.Errorf("dispatch: read state dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".spec.json"); ok {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		raw, err := os.ReadFile(d.specPath(id))
		if err != nil {
			return fmt.Errorf("dispatch: read spec %s: %w", id, err)
		}
		var doc specDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("dispatch: spec %s corrupt: %w", id, err)
		}
		doc.Spec = doc.Spec.Normalized()
		c, err := d.newCampaignState(id, doc.Spec)
		if err != nil {
			return err
		}
		replayed, err := campaign.ReadResultLog(d.logPath(id), c.checkpointID())
		if err != nil {
			return err
		}
		for _, r := range replayed {
			if r.Trial < 0 || r.Trial >= len(c.done) || c.done[r.Trial] {
				continue
			}
			c.results[r.Trial] = r
			c.done[r.Trial] = true
			c.doneCount++
		}
		c.tracker.RecordReplayed(c.doneCount)
		c.rebuildPending(d.opts.Chunk)
		if c.doneCount == len(c.done) {
			c.finish()
		} else {
			if c.doneCount > 0 {
				c.state = "running"
			}
			if _, ok := d.adm.Admit(); ok {
				c.admitted = true
			}
		}
		if c.state != "done" && d.opts.StateDir != "" {
			log, err := campaign.NewResultLog(d.logPath(id), c.checkpointID())
			if err != nil {
				return err
			}
			c.log = log
		}
		d.campaigns[id] = c
		d.order = append(d.order, id)
		d.installTracker(c)
		var n int
		if _, err := fmt.Sscanf(id, "c%d", &n); err == nil && n > d.seq {
			d.seq = n
		}
	}
	return nil
}

func (d *Dispatcher) specPath(id string) string {
	return filepath.Join(d.opts.StateDir, id+".spec.json")
}

func (d *Dispatcher) logPath(id string) string {
	return filepath.Join(d.opts.StateDir, id+".jsonl")
}

// newCampaignState validates sp and builds the in-memory record.
func (d *Dispatcher) newCampaignState(id string, sp Spec) (*campaignState, error) {
	sp = sp.Normalized()
	if err := sp.Validate(true); err != nil {
		return nil, err
	}
	c := &campaignState{
		id:          id,
		spec:        sp,
		name:        sp.Name(),
		fingerprint: sp.Fingerprint(),
		state:       "queued",
		results:     make([]campaign.TrialResult, sp.Trials),
		done:        make([]bool, sp.Trials),
		leased:      make(map[int]string),
		tracker:     campaign.NewProgressTracker(sp.Name(), sp.Trials),
	}
	c.rebuildPending(d.opts.Chunk)
	return c, nil
}

func (c *campaignState) checkpointID() campaign.CheckpointID {
	return campaign.CheckpointID{
		Campaign: c.name, Seed: c.spec.Seed, Trials: c.spec.Trials,
		Fingerprint: c.fingerprint,
	}
}

// chunkRange returns chunk i's trial range [lo, hi).
func (c *campaignState) chunkRange(i, chunk int) (lo, hi int) {
	lo = i * chunk
	hi = lo + chunk
	if hi > len(c.done) {
		hi = len(c.done)
	}
	return lo, hi
}

// rebuildPending recomputes the pending chunk queue from the done
// bitmap: every chunk with at least one missing trial is pending.
func (c *campaignState) rebuildPending(chunk int) {
	c.pending = c.pending[:0]
	n := (len(c.done) + chunk - 1) / chunk
	for i := 0; i < n; i++ {
		if _, held := c.leased[i]; held {
			continue
		}
		lo, hi := c.chunkRange(i, chunk)
		for t := lo; t < hi; t++ {
			if !c.done[t] {
				c.pending = append(c.pending, i)
				break
			}
		}
	}
}

// finish seals a fully recorded campaign: merge, store the
// deterministic summary bytes, close the log.
func (c *campaignState) finish() {
	sum := campaign.Summarize(c.name, c.spec.Seed, c.results)
	b, err := sum.MarshalDeterministic()
	if err != nil {
		// Summary is a plain struct; marshalling cannot fail outside a
		// programming error. Record it as a campaign failure.
		c.state = "failed"
		c.failure = err.Error()
		return
	}
	c.summary = append(b, '\n')
	c.state = "done"
	c.pending = nil
	if c.log != nil {
		// Close errors would have surfaced on the per-record flushes.
		c.log.Close()
		c.log = nil
	}
}

// installTracker exposes the campaign's live progress (rate, ETA,
// Wilson interval) under its id on /progress.
func (d *Dispatcher) installTracker(c *campaignState) {
	d.progress.Set(c.id, func() any { return c.tracker.Snapshot() })
}

// fleetSnapshot is the "dispatcher" entry of the /progress payload.
func (d *Dispatcher) fleetSnapshot() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reapLocked()
	states := map[string]int{}
	for _, c := range d.campaigns {
		states[c.state]++
	}
	return map[string]any{
		"campaigns":    len(d.campaigns),
		"by_state":     states,
		"leases":       len(d.leases),
		"workers":      len(d.workers),
		"admitted":     d.adm.Pending(),
		"max_admitted": d.adm.Limit(),
	}
}

// reapLocked expires overdue leases and returns their chunks to the
// pending queue. Callers hold d.mu. Expiry is lazy — every API
// request reaps first — which is enough because workers poll: a live
// fleet generates a steady stream of requests, and with no workers
// there is nobody to hand a re-issued chunk to anyway.
func (d *Dispatcher) reapLocked() {
	now := d.now()
	for id, l := range d.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(d.leases, id)
		d.reg.Counter("dispatch.leases_expired").Inc()
		c := d.campaigns[l.campaign]
		if c == nil || c.state == "done" || c.state == "failed" {
			continue
		}
		if c.leased[l.chunk] == id {
			delete(c.leased, l.chunk)
			lo, hi := c.chunkRange(l.chunk, d.opts.Chunk)
			for t := lo; t < hi; t++ {
				if !c.done[t] {
					c.pending = append(c.pending, l.chunk)
					break
				}
			}
		}
	}
}

// ---- wire types ----

// SubmitResponse answers POST /v1/campaigns.
type SubmitResponse struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Trials int    `json:"trials"`
	State  string `json:"state"`
}

// StatusResponse answers GET /v1/campaigns/{id} and, in brief form,
// GET /v1/campaigns. ElapsedMS is the only wall-clock field; all
// others are deterministic once the campaign completes.
type StatusResponse struct {
	ID            string          `json:"id"`
	Name          string          `json:"name"`
	Spec          Spec            `json:"spec"`
	Fingerprint   string          `json:"fingerprint"`
	State         string          `json:"state"`
	Trials        int             `json:"trials"`
	Done          int             `json:"done"`
	Survived      int             `json:"survived"`
	Errors        int             `json:"errors"`
	Chunk         int             `json:"chunk"`
	PendingChunks int             `json:"pending_chunks"`
	LeasedChunks  int             `json:"leased_chunks"`
	Failure       string          `json:"failure,omitempty"`
	Summary       json.RawMessage `json:"summary,omitempty"`
	ElapsedMS     float64         `json:"elapsed_ms"`
}

// RegisterRequest announces a worker to POST /v1/workers.
type RegisterRequest struct {
	Worker string `json:"worker"`
	Cores  int    `json:"cores,omitempty"`
}

// RegisterResponse tells the worker how to behave.
type RegisterResponse struct {
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	PollMS     int64 `json:"poll_ms"`
}

// LeaseRequest asks POST /v1/lease for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a trial range; the worker must heartbeat
// before TTLMS elapses or the chunk is re-issued.
type LeaseResponse struct {
	LeaseID    string `json:"lease_id"`
	CampaignID string `json:"campaign_id"`
	Name       string `json:"name"`
	Spec       Spec   `json:"spec"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	TTLMS      int64  `json:"ttl_ms"`
}

// ResultsRequest streams completed trials to POST /v1/results. Results
// may arrive in any number of batches; Complete marks the lease's
// range fully reported, and Error reports a worker-side build failure
// that fails the whole campaign (it is deterministic — every worker
// would hit it).
type ResultsRequest struct {
	CampaignID string                 `json:"campaign_id"`
	LeaseID    string                 `json:"lease_id,omitempty"`
	Results    []campaign.TrialResult `json:"results,omitempty"`
	Complete   bool                   `json:"complete,omitempty"`
	Error      string                 `json:"error,omitempty"`
}

// ResultsResponse acknowledges a results batch.
type ResultsResponse struct {
	Accepted int    `json:"accepted"`
	State    string `json:"state"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (d *Dispatcher) handleSubmit(w http.ResponseWriter, r *http.Request) {
	d.reg.Counter("dispatch.requests").Inc()
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		d.fail(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	if err := sp.Normalized().Validate(true); err != nil {
		d.fail(w, http.StatusBadRequest, err)
		return
	}
	if n, ok := d.adm.Admit(); !ok {
		d.reg.Counter("dispatch.rejected").Inc()
		d.fail(w, http.StatusTooManyRequests,
			fmt.Errorf("dispatcher busy: %d campaigns unfinished", n))
		return
	}

	d.mu.Lock()
	d.seq++
	id := fmt.Sprintf("c%06d", d.seq)
	c, err := d.newCampaignState(id, sp)
	if err != nil {
		d.mu.Unlock()
		d.adm.Release()
		d.fail(w, http.StatusBadRequest, err)
		return
	}
	c.admitted = true
	if d.opts.StateDir != "" {
		if err := d.persistNewLocked(c); err != nil {
			d.mu.Unlock()
			d.adm.Release()
			d.fail(w, http.StatusInternalServerError, err)
			return
		}
	}
	d.campaigns[id] = c
	d.order = append(d.order, id)
	d.installTracker(c)
	d.reg.Counter("dispatch.campaigns_submitted").Inc()
	resp := SubmitResponse{ID: id, Name: c.name, Trials: c.spec.Trials, State: c.state}
	d.mu.Unlock()
	d.writeJSON(w, http.StatusCreated, resp)
}

// persistNewLocked writes the spec document and opens the result log.
func (d *Dispatcher) persistNewLocked(c *campaignState) error {
	raw, err := json.MarshalIndent(specDoc{ID: c.id, Spec: c.spec}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(d.specPath(c.id), append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("dispatch: persist spec: %w", err)
	}
	log, err := campaign.NewResultLog(d.logPath(c.id), c.checkpointID())
	if err != nil {
		return err
	}
	c.log = log
	return nil
}

func (d *Dispatcher) handleList(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	d.reapLocked()
	out := make([]StatusResponse, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.statusLocked(d.campaigns[id], false))
	}
	d.mu.Unlock()
	d.writeJSON(w, http.StatusOK, out)
}

func (d *Dispatcher) handleStatus(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	d.reapLocked()
	c := d.campaigns[r.PathValue("id")]
	if c == nil {
		d.mu.Unlock()
		d.fail(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	resp := d.statusLocked(c, true)
	d.mu.Unlock()
	d.writeJSON(w, http.StatusOK, resp)
}

// statusLocked renders a campaign's status; callers hold d.mu.
func (d *Dispatcher) statusLocked(c *campaignState, detailed bool) StatusResponse {
	survived, errs := 0, 0
	for i, r := range c.results {
		if !c.done[i] {
			continue
		}
		switch {
		case r.Err != "":
			errs++
		case r.Survived:
			survived++
		}
	}
	s := StatusResponse{
		ID: c.id, Name: c.name, Spec: c.spec, Fingerprint: c.fingerprint,
		State: c.state, Trials: c.spec.Trials, Done: c.doneCount,
		Survived: survived, Errors: errs,
		Chunk: d.opts.Chunk, PendingChunks: len(c.pending), LeasedChunks: len(c.leased),
		Failure:   c.failure,
		ElapsedMS: c.tracker.Snapshot().ElapsedMS,
	}
	if detailed && c.summary != nil {
		// The stored bytes end with '\n'; the raw message must not.
		s.Summary = json.RawMessage(c.summary[:len(c.summary)-1])
	}
	return s
}

func (d *Dispatcher) handleSummary(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	c := d.campaigns[r.PathValue("id")]
	var summary []byte
	var state string
	if c != nil {
		summary, state = c.summary, c.state
	}
	d.mu.Unlock()
	if c == nil {
		d.fail(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	if summary == nil {
		d.fail(w, http.StatusConflict, fmt.Errorf("campaign %s is %s; summary exists only once done", c.id, state))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(summary); err != nil {
		return // client went away
	}
}

func (d *Dispatcher) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		d.fail(w, http.StatusBadRequest, fmt.Errorf("decode register: %w", err))
		return
	}
	if req.Worker == "" {
		d.fail(w, http.StatusBadRequest, errors.New("register: worker name required"))
		return
	}
	d.mu.Lock()
	d.workers[req.Worker] = &workerInfo{cores: req.Cores, lastSeen: d.now()}
	d.reg.Counter("dispatch.workers_registered").Inc()
	d.mu.Unlock()
	d.writeJSON(w, http.StatusOK, RegisterResponse{
		LeaseTTLMS: d.opts.LeaseTTL.Milliseconds(),
		PollMS:     (d.opts.LeaseTTL / 20).Milliseconds(),
	})
}

func (d *Dispatcher) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		d.fail(w, http.StatusBadRequest, fmt.Errorf("decode lease request: %w", err))
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reapLocked()
	if wi := d.workers[req.Worker]; wi != nil {
		wi.lastSeen = d.now()
	}
	// Oldest campaign with pending work wins — FIFO fairness across
	// campaigns, contiguous ranges within one.
	for _, id := range d.order {
		c := d.campaigns[id]
		if c.state == "done" || c.state == "failed" || len(c.pending) == 0 {
			continue
		}
		chunk := c.pending[0]
		c.pending = c.pending[1:]
		d.leaseSeq++
		l := &lease{
			id:       fmt.Sprintf("l%06d", d.leaseSeq),
			worker:   req.Worker,
			campaign: c.id,
			chunk:    chunk,
			expires:  d.now().Add(d.opts.LeaseTTL),
		}
		l.lo, l.hi = c.chunkRange(chunk, d.opts.Chunk)
		d.leases[l.id] = l
		c.leased[chunk] = l.id
		if c.state == "queued" {
			c.state = "running"
		}
		d.reg.Counter("dispatch.leases_issued").Inc()
		d.writeJSON(w, http.StatusOK, LeaseResponse{
			LeaseID: l.id, CampaignID: c.id, Name: c.name, Spec: c.spec,
			Lo: l.lo, Hi: l.hi, TTLMS: d.opts.LeaseTTL.Milliseconds(),
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	d.reapLocked()
	l := d.leases[r.PathValue("id")]
	if l != nil {
		l.expires = d.now().Add(d.opts.LeaseTTL)
		if wi := d.workers[l.worker]; wi != nil {
			wi.lastSeen = d.now()
		}
	}
	d.mu.Unlock()
	if l == nil {
		// 410: the lease expired and its chunk may already be re-issued
		// — the worker should abandon the range.
		d.fail(w, http.StatusGone, fmt.Errorf("lease %q expired or unknown", r.PathValue("id")))
		return
	}
	d.writeJSON(w, http.StatusOK, RegisterResponse{
		LeaseTTLMS: d.opts.LeaseTTL.Milliseconds(),
		PollMS:     (d.opts.LeaseTTL / 20).Milliseconds(),
	})
}

func (d *Dispatcher) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		d.fail(w, http.StatusBadRequest, fmt.Errorf("decode results: %w", err))
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reapLocked()
	c := d.campaigns[req.CampaignID]
	if c == nil {
		d.fail(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", req.CampaignID))
		return
	}
	l := d.leases[req.LeaseID]
	if l != nil {
		l.expires = d.now().Add(d.opts.LeaseTTL) // a results batch is a heartbeat
		if wi := d.workers[l.worker]; wi != nil {
			wi.lastSeen = d.now()
		}
	}
	if req.Error != "" && c.state != "done" && c.state != "failed" {
		// Build failures are deterministic properties of the spec —
		// every worker would fail the same way, so fail the campaign.
		c.state = "failed"
		c.failure = req.Error
		c.pending = nil
		if c.admitted {
			c.admitted = false
			d.adm.Release()
		}
		d.reg.Counter("dispatch.campaigns_failed").Inc()
	}
	accepted := 0
	if c.state != "failed" {
		for _, res := range req.Results {
			if res.Trial < 0 || res.Trial >= len(c.done) {
				d.fail(w, http.StatusBadRequest,
					fmt.Errorf("trial %d outside campaign %s [0,%d)", res.Trial, c.id, len(c.done)))
				return
			}
			if c.done[res.Trial] {
				continue // duplicate from an expired-then-revived lease; identical by construction
			}
			c.results[res.Trial] = res
			c.done[res.Trial] = true
			c.doneCount++
			accepted++
			c.tracker.Record(res.Survived, res.Err != "", res.Value)
			if c.log != nil {
				if err := c.log.Append(res); err != nil {
					d.fail(w, http.StatusInternalServerError, err)
					return
				}
			}
		}
	}
	d.reg.Counter("dispatch.results_recorded").Add(int64(accepted))
	if req.Complete && l != nil {
		delete(d.leases, req.LeaseID)
		if c.leased[l.chunk] == req.LeaseID {
			delete(c.leased, l.chunk)
			lo, hi := c.chunkRange(l.chunk, d.opts.Chunk)
			for t := lo; t < hi; t++ {
				if !c.done[t] {
					// Completed lease with holes (a partial batch was
					// lost in flight): re-queue the chunk.
					c.pending = append(c.pending, l.chunk)
					break
				}
			}
		}
	}
	if c.state != "failed" && c.doneCount == len(c.done) {
		c.finish()
		if c.admitted {
			c.admitted = false
			d.adm.Release()
		}
		d.reg.Counter("dispatch.campaigns_completed").Inc()
	}
	d.writeJSON(w, http.StatusOK, ResultsResponse{Accepted: accepted, State: c.state})
}

func (d *Dispatcher) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		d.fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(b, '\n')); err != nil {
		return // client went away
	}
}

func (d *Dispatcher) fail(w http.ResponseWriter, status int, err error) {
	d.reg.Counter("dispatch.errors").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, merr := json.Marshal(errorResponse{Error: err.Error()})
	if merr != nil {
		b = []byte(`{"error":"internal"}`)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return
	}
}
