package dispatch

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// runFleet runs n in-process simd workers against the dispatcher at
// url until they all go idle. They share one Builder so the (here
// synthetic) build happens once per fingerprint, the way a real fleet
// shares one annealed placement per campaign.
func runFleet(t *testing.T, url string, n int) {
	t.Helper()
	builder := &Builder{Build: syntheticBuild}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(context.Background(), WorkerOptions{
				Name:       fmt.Sprintf("w%d", i),
				Dispatcher: url,
				Workers:    2,
				Batch:      16,
				MaxIdle:    500 * time.Millisecond,
				Builder:    builder,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestWorkerFleetByteIdentity is the tentpole claim end to end, minus
// process boundaries: the same campaign dispatched to fleets of 1, 2
// and 4 workers produces summaries byte-identical to the
// single-process engine every time. (The root-level chaos test covers
// real binaries and SIGKILL.)
func TestWorkerFleetByteIdentity(t *testing.T) {
	sp := testSpec(256)
	want := referenceSummary(t, sp)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			d, err := New(Options{Chunk: 32, LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(d.Handler())
			defer srv.Close()
			defer d.Close()
			client := NewClient(srv.URL, srv.Client())
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			sub, err := client.Submit(ctx, sp)
			if err != nil {
				t.Fatal(err)
			}
			runFleet(t, srv.URL, n)
			st, err := client.Wait(ctx, sub.ID, 20*time.Millisecond)
			if err != nil {
				t.Fatalf("wait: %v", err)
			}
			if st.State != "done" {
				t.Fatalf("campaign %s with %d workers: %+v", sub.ID, n, st)
			}
			got, err := client.Summary(ctx, sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("fleet of %d: summary differs from single-process:\n got %s\nwant %s",
					n, got, want)
			}
		})
	}
}

// TestWorkerAbandonsExpiredLease drives one worker whose lease the
// dispatcher expires mid-run (a wedged-then-revived worker): the
// worker must notice the 410 and abandon, and a healthy worker must
// finish the campaign with the canonical bytes.
func TestWorkerAbandonsExpiredLease(t *testing.T) {
	sp := testSpec(64)
	d, err := New(Options{Chunk: 32, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	clock := newTestClock()
	d.now = clock.now
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Close()
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	sub, err := client.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}

	// A worker leases a chunk, then "wedges": its lease expires on the
	// manual clock before it reports.
	l, ok, err := client.Lease(ctx, "wedged")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	clock.advance(11 * time.Second)
	if err := client.Heartbeat(ctx, l.LeaseID); !IsStatus(err, 410) {
		t.Fatalf("want 410 after expiry, got %v", err)
	}

	// The healthy fleet drains everything, including the re-issued chunk.
	runFleet(t, srv.URL, 2)
	st, err := client.Wait(ctx, sub.ID, 20*time.Millisecond)
	if err != nil || st.State != "done" {
		t.Fatalf("wait: state=%q err=%v", st.State, err)
	}
	got, err := client.Summary(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceSummary(t, sp); string(got) != string(want) {
		t.Errorf("summary after abandoned lease differs:\n got %s\nwant %s", got, want)
	}
}
