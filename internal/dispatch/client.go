package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a dispatcher over HTTP/JSON. The zero value is not
// usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the dispatcher at base
// (e.g. "http://127.0.0.1:9400"). A nil hc uses a client with a
// conservative timeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: hc}
}

// StatusError is a non-2xx dispatcher reply.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dispatcher: %s (HTTP %d)", e.Message, e.Code)
}

// IsStatus reports whether err is a StatusError with the given code.
func IsStatus(err error, code int) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == code
}

// do runs one request; out, when non-nil, receives the decoded JSON
// body. A 204 leaves out untouched and returns (false, nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) (bool, error) {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return false, err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return false, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return false, err
	}
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e errorResponse
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return false, &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return false, fmt.Errorf("dispatcher: decode %s %s reply: %w", method, path, err)
		}
	}
	return true, nil
}

// Submit enqueues a campaign.
func (c *Client) Submit(ctx context.Context, sp Spec) (SubmitResponse, error) {
	var out SubmitResponse
	_, err := c.do(ctx, http.MethodPost, "/v1/campaigns", sp, &out)
	return out, err
}

// Status fetches one campaign's status.
func (c *Client) Status(ctx context.Context, id string) (StatusResponse, error) {
	var out StatusResponse
	_, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &out)
	return out, err
}

// List fetches every campaign's status, submission order.
func (c *Client) List(ctx context.Context) ([]StatusResponse, error) {
	var out []StatusResponse
	_, err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &out)
	return out, err
}

// Summary fetches a completed campaign's deterministic summary bytes
// (trailing newline included) — the exact bytes
// campaign.Summary.MarshalDeterministic produces plus '\n'.
func (c *Client) Summary(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/campaigns/"+id+"/summary", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, &StatusError{Code: resp.StatusCode, Message: msg}
	}
	return raw, nil
}

// Wait polls until the campaign reaches a terminal state ("done" or
// "failed") or ctx expires. poll <= 0 defaults to 250ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (StatusResponse, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == "done" || st.State == "failed" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Register announces a worker.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var out RegisterResponse
	_, err := c.do(ctx, http.MethodPost, "/v1/workers", req, &out)
	return out, err
}

// Lease asks for work. ok is false when the dispatcher has none (204).
func (c *Client) Lease(ctx context.Context, worker string) (LeaseResponse, bool, error) {
	var out LeaseResponse
	ok, err := c.do(ctx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: worker}, &out)
	return out, ok && err == nil, err
}

// Heartbeat renews a lease. A 410 means the lease expired: the worker
// should abandon the range (IsStatus(err, http.StatusGone)).
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/lease/"+leaseID+"/heartbeat", struct{}{}, nil)
	return err
}

// Results streams a batch of trial results.
func (c *Client) Results(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	var out ResultsResponse
	_, err := c.do(ctx, http.MethodPost, "/v1/results", req, &out)
	return out, err
}
