package dispatch

import (
	"strings"
	"testing"

	"dmfb/internal/campaign"
	"dmfb/internal/defect"
)

func TestSpecNameYieldVariants(t *testing.T) {
	cases := []struct {
		sp   Spec
		want string
	}{
		{Spec{Mode: "yield", Q: 0.02}, "yield-q0.02"},
		{Spec{Mode: "yield", Q: 0.02, DefectModel: defect.ModelClustered}, "yield-clustered-q0.02"},
		{Spec{Mode: "yield", DefectModel: defect.ModelFile, DefectMap: "X.\n..\n"}, "yield-file"},
		{Spec{Mode: "yield", Q: 0.02, Spares: 2}, "yield-q0.02-s2"},
		{Spec{Mode: "yield", Q: 0.02, Ladder: true}, "yield-q0.02-ladder"},
		{Spec{Mode: "yield", Q: 0.02, DefectModel: defect.ModelClustered, Spares: 4, Ladder: true},
			"yield-clustered-q0.02-s4-ladder"},
	}
	for _, c := range cases {
		if got := c.sp.Name(); got != c.want {
			t.Errorf("Name(%+v) = %q, want %q", c.sp, got, c.want)
		}
	}
}

func TestSpecValidateDefectExtensions(t *testing.T) {
	cases := []struct {
		name string
		sp   Spec
		want string // substring of the error; "" means valid
	}{
		{"clustered ok", Spec{Mode: "yield", Trials: 8, Q: 0.02, DefectModel: defect.ModelClustered}, ""},
		{"file ok", Spec{Mode: "yield", Trials: 8, DefectModel: defect.ModelFile, DefectMap: "..X.\n....\n"}, ""},
		{"unknown model", Spec{Mode: "yield", Trials: 8, DefectModel: "salt"}, "unknown model"},
		{"file without map", Spec{Mode: "yield", Trials: 8, DefectModel: defect.ModelFile}, "map"},
		{"bad cluster size", Spec{Mode: "yield", Trials: 8, DefectModel: defect.ModelClustered, ClusterSize: 999}, "cluster"},
		{"spares too big", Spec{Mode: "yield", Trials: 8, Q: 0.02, Spares: 9}, "spare budget"},
		{"spares negative", Spec{Mode: "yield", Trials: 8, Q: 0.02, Spares: -1}, "spare budget"},
		{"spares on multi ok", Spec{Mode: "multi", Trials: 8, Spares: 2}, ""},
		// Non-yield modes never touch the defect params, so a stale
		// defect field cannot invalidate them.
		{"multi ignores defect model", Spec{Mode: "multi", Trials: 8, DefectModel: "salt"}, ""},
	}
	for _, c := range cases {
		err := c.sp.Validate(false)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestSpecFingerprintLegacyStability pins the fingerprint of a plain
// uniform yield spec to the pre-defect-model formula: recorded
// checkpoints from before the generalization must still resume.
func TestSpecFingerprintLegacyStability(t *testing.T) {
	sp := Spec{Mode: "yield", Trials: 512, Q: 0.05, Full: true}.Normalized()
	legacy := campaign.ConfigFingerprint("dmfb-campaign",
		sp.Mode, sp.K, sp.Q, sp.Full, sp.Recovery, sp.Transient, sp.PlaceSeed)
	if got := sp.Fingerprint(); got != legacy {
		t.Errorf("uniform yield fingerprint %s drifted from legacy %s", got, legacy)
	}
	// Same for the other modes, which never carry defect extensions.
	for _, mode := range []string{"single", "multi", "assay", "exhaustive"} {
		sp := Spec{Mode: mode, Trials: 16}.Normalized()
		legacy := campaign.ConfigFingerprint("dmfb-campaign",
			sp.Mode, sp.K, sp.Q, sp.Full, sp.Recovery, sp.Transient, sp.PlaceSeed)
		if got := sp.Fingerprint(); got != legacy {
			t.Errorf("%s fingerprint %s drifted from legacy %s", mode, got, legacy)
		}
	}
}

func TestSpecFingerprintDistinguishesDefectExtensions(t *testing.T) {
	base := Spec{Mode: "yield", Trials: 64, Q: 0.02}
	variants := []Spec{
		base,
		{Mode: "yield", Trials: 64, Q: 0.02, DefectModel: defect.ModelClustered},
		{Mode: "yield", Trials: 64, Q: 0.02, DefectModel: defect.ModelClustered, ClusterSize: 8},
		{Mode: "yield", Trials: 64, Q: 0.02, DefectModel: defect.ModelClustered, ClusterRadius: 4},
		{Mode: "yield", Trials: 64, DefectModel: defect.ModelFile, DefectMap: "X.\n..\n"},
		{Mode: "yield", Trials: 64, DefectModel: defect.ModelFile, DefectMap: ".X\n..\n"},
		{Mode: "yield", Trials: 64, Q: 0.02, Spares: 2},
		{Mode: "yield", Trials: 64, Q: 0.02, Spares: 4},
		{Mode: "yield", Trials: 64, Q: 0.02, Ladder: true},
	}
	seen := map[string]Spec{}
	for _, sp := range variants {
		fp := sp.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("specs %+v and %+v share fingerprint %s", prev, sp, fp)
		}
		seen[fp] = sp
	}
	// Trials and Seed stay outside the fingerprint (the checkpoint
	// header pins them), even with extensions present.
	a := Spec{Mode: "yield", Trials: 64, Q: 0.02, Spares: 2, Seed: 1}
	b := Spec{Mode: "yield", Trials: 128, Q: 0.02, Spares: 2, Seed: 9}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("trials/seed leaked into the extended fingerprint")
	}
}
